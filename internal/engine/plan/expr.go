// Package plan defines the engine's logical query plans: inspectable
// expression values, plan nodes, table statistics, a cost model, and
// the rule+cost optimizer that orders joins and pushes filters. The
// package deliberately has no dependency on the engine's physical
// layer (tables, blocks, operators) — plans are pure serializable
// values, so the planner and the operator suite can evolve
// independently (the GenDB argument) and a plan can be rendered,
// compared, cached, or shipped without touching data.
//
// Determinism: every choice in this package is a pure function of its
// inputs. Statistics come from the caller's Catalog, ties break toward
// the lower written scan index, and all renderings (text and JSON) are
// byte-stable for a given plan.
package plan

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is an inspectable boolean expression over the columns of one
// relation. Unlike an opaque func(Row) bool predicate, an Expr can be
// examined by the optimizer (for pushdown and selectivity estimation),
// rendered in EXPLAIN output, and serialized.
type Expr interface {
	isExpr()
	// String renders the expression deterministically for EXPLAIN.
	String() string
}

// LitKind tags a literal's type.
type LitKind uint8

// Literal kinds.
const (
	LitInt LitKind = iota
	LitFloat
	LitString
	LitBool
)

func (k LitKind) String() string {
	switch k {
	case LitInt:
		return "int"
	case LitFloat:
		return "float"
	case LitString:
		return "string"
	case LitBool:
		return "bool"
	}
	return fmt.Sprintf("LitKind(%d)", uint8(k))
}

// Lit is a typed literal. Exactly one payload field is meaningful,
// selected by Kind.
type Lit struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
	B    bool
}

// IntLit, FloatLit, StringLit, BoolLit build literals.
func IntLit(v int64) Lit     { return Lit{Kind: LitInt, I: v} }
func FloatLit(v float64) Lit { return Lit{Kind: LitFloat, F: v} }
func StringLit(v string) Lit { return Lit{Kind: LitString, S: v} }
func BoolLit(v bool) Lit     { return Lit{Kind: LitBool, B: v} }

// String renders the literal.
func (l Lit) String() string {
	switch l.Kind {
	case LitInt:
		return strconv.FormatInt(l.I, 10)
	case LitFloat:
		return strconv.FormatFloat(l.F, 'g', -1, 64)
	case LitString:
		return "'" + strings.ReplaceAll(l.S, "'", "''") + "'"
	case LitBool:
		return strconv.FormatBool(l.B)
	}
	return "?"
}

// Float returns the literal's numeric value and whether it has one.
func (l Lit) Float() (float64, bool) {
	switch l.Kind {
	case LitInt:
		return float64(l.I), true
	case LitFloat:
		return l.F, true
	}
	return 0, false
}

// Cmp compares a column against a literal. Op is one of
// "=", "<>", "!=", "<", "<=", ">", ">=".
type Cmp struct {
	Op  string
	Col string
	Val Lit
}

// Between keeps rows with Lo <= col <= Hi.
type Between struct {
	Col    string
	Lo, Hi Lit
}

// And is conjunction.
type And struct{ L, R Expr }

// Or is disjunction.
type Or struct{ L, R Expr }

// Not is negation.
type Not struct{ E Expr }

// ColPred is a single-column predicate whose decision function lives
// outside the plan (a Go closure registered by the query builder —
// WhereFloat/WhereString). The optimizer can still push it down and
// attribute it to one column; it just cannot estimate it precisely.
// Fn names the closure's domain ("float" or "string") and Ref is the
// caller's handle for recovering the closure at execution time.
type ColPred struct {
	Col string
	Fn  string
	Ref int
}

func (Cmp) isExpr()     {}
func (Between) isExpr() {}
func (And) isExpr()     {}
func (Or) isExpr()      {}
func (Not) isExpr()     {}
func (ColPred) isExpr() {}

func (e Cmp) String() string { return e.Col + " " + e.Op + " " + e.Val.String() }
func (e Between) String() string {
	return e.Col + " between " + e.Lo.String() + " and " + e.Hi.String()
}
func (e And) String() string { return "(" + e.L.String() + " and " + e.R.String() + ")" }
func (e Or) String() string  { return "(" + e.L.String() + " or " + e.R.String() + ")" }
func (e Not) String() string { return "not " + e.E.String() }
func (e ColPred) String() string {
	return e.Fn + "_pred(" + e.Col + ")"
}

// Columns returns the column names referenced by e, in first-appearance
// order without duplicates.
func Columns(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(c string) {
		k := strings.ToLower(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case Cmp:
			add(t.Col)
		case Between:
			add(t.Col)
		case ColPred:
			add(t.Col)
		case And:
			walk(t.L)
			walk(t.R)
		case Or:
			walk(t.L)
			walk(t.R)
		case Not:
			walk(t.E)
		}
	}
	walk(e)
	return out
}

// Conjuncts splits top-level AND chains into their conjuncts, in
// left-to-right written order. Pushdown operates per conjunct.
func Conjuncts(e Expr) []Expr {
	if a, ok := e.(And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Expr{e}
}

// RenameCols returns e with every column name mapped through f.
func RenameCols(e Expr, f func(string) string) Expr {
	switch t := e.(type) {
	case Cmp:
		t.Col = f(t.Col)
		return t
	case Between:
		t.Col = f(t.Col)
		return t
	case ColPred:
		t.Col = f(t.Col)
		return t
	case And:
		return And{L: RenameCols(t.L, f), R: RenameCols(t.R, f)}
	case Or:
		return Or{L: RenameCols(t.L, f), R: RenameCols(t.R, f)}
	case Not:
		return Not{E: RenameCols(t.E, f)}
	}
	return e
}
