package plan

// ColStats summarizes one column of one scan for the cost model. NDV
// is the (possibly estimated) number of distinct values; Min/Max bound
// the column's numeric range and are meaningful only when Numeric is
// true.
type ColStats struct {
	NDV     int64
	Min     float64
	Max     float64
	Numeric bool
}

// Catalog supplies statistics to the optimizer. Implementations live
// in the physical layer (harvested from ColumnBlocks); the plan
// package only consumes them. ColStats reports statistics for column
// col of the region's scan with index scan, and whether any are
// available. Implementations must be deterministic: equal inputs give
// equal statistics.
type Catalog interface {
	// ScanRows returns the row count of the scan.
	ScanRows(scan int) int64
	// ColStats returns column statistics, if known.
	ColStats(scan int, col string) (ColStats, bool)
}
