package engine

import (
	"strings"
	"testing"

	"modeldata/internal/obs"
)

// mixedTable returns a table whose float column carries a dynamically
// typed int value, which the strict columnar decode rejects — the
// canonical trigger of the columnar→row fallback latch.
func mixedTable() *Table {
	return &Table{
		Name: "mixed",
		Schema: Schema{
			{Name: "id", Type: TypeInt},
			{Name: "x", Type: TypeFloat},
		},
		Rows: []Row{
			{Int(1), Float(1.5)},
			{Int(2), Int(7)}, // int in a float column: decode fails
			{Int(3), Float(-2)},
		},
	}
}

// TestColFallbackCounterFires pins the observability contract of the
// fallback latch: a query over a mixed-type table must still produce
// correct results on the row path AND increment engine.colfallback —
// before the counter existed the slowdown was completely silent.
func TestColFallbackCounterFires(t *testing.T) {
	before := obs.Default().Counter(MetricColFallback).Value()

	res, err := From(mixedTable()).
		WhereFloat("x", func(v float64) bool { return v > 0 }).
		Select("id").
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("row-path result has %d rows, want 2", res.Len())
	}

	after := obs.Default().Counter(MetricColFallback).Value()
	if after <= before {
		t.Fatalf("engine.colfallback did not advance: before=%d after=%d", before, after)
	}

	// The latch converts at most once per chain: a second operation on
	// the same chain must not pay (or count) another decode attempt.
	base := From(mixedTable()).WhereFloat("x", func(v float64) bool { return v > -10 })
	mid := obs.Default().Counter(MetricColFallback).Value()
	if _, err := base.Select("id").Distinct().Run(); err != nil {
		t.Fatal(err)
	}
	grew := obs.Default().Counter(MetricColFallback).Value() - mid
	if grew > 1 {
		t.Fatalf("latched chain re-counted the fallback %d times, want at most 1", grew)
	}
}

// TestColFallbackSQLCounterFires drives the same latch through the SQL
// executor, whose fallback decision point is separate from the query
// builder's.
func TestColFallbackSQLCounterFires(t *testing.T) {
	db := NewDatabase()
	db.Put(mixedTable())

	before := obs.Default().Counter(MetricColFallback).Value()
	res, err := db.Query("SELECT id FROM mixed")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("result has %d rows, want 3", res.Len())
	}
	after := obs.Default().Counter(MetricColFallback).Value()
	if after <= before {
		t.Fatalf("engine.colfallback did not advance via SQL: before=%d after=%d", before, after)
	}
}

// TestColPathCounterFires checks the happy-path twin: a clean table
// goes columnar and counts engine.colpath, not engine.colfallback.
func TestColPathCounterFires(t *testing.T) {
	clean := &Table{
		Name: "clean",
		Schema: Schema{
			{Name: "id", Type: TypeInt},
			{Name: "x", Type: TypeFloat},
		},
		Rows: []Row{
			{Int(1), Float(1.5)},
			{Int(2), Float(2.5)},
		},
	}
	colBefore := obs.Default().Counter(MetricColQueries).Value()
	fbBefore := obs.Default().Counter(MetricColFallback).Value()
	if _, err := From(clean).WhereFloat("x", func(v float64) bool { return v > 2 }).Run(); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter(MetricColQueries).Value(); got <= colBefore {
		t.Fatalf("engine.colpath did not advance: before=%d after=%d", colBefore, got)
	}
	if got := obs.Default().Counter(MetricColFallback).Value(); got != fbBefore {
		t.Fatalf("clean table advanced engine.colfallback: before=%d after=%d", fbBefore, got)
	}
}

// TestMetricNamesFollowScheme guards the DESIGN.md §8 naming scheme:
// engine metrics live under the "engine." prefix.
func TestMetricNamesFollowScheme(t *testing.T) {
	for _, name := range []string{MetricColFallback, MetricColQueries, MetricRowsScanned} {
		if !strings.HasPrefix(name, "engine.") {
			t.Errorf("metric %q does not carry the engine. prefix", name)
		}
	}
}
