package engine

import (
	"fmt"
	"testing"
)

// repeatRuns is how many times each determinism test re-executes the
// same query. Map iteration order changes between runs inside a single
// process, so ten repetitions reliably catch ordered output that leaks
// map order. CI additionally runs these tests under -race, which
// exercises the parallel self-join's goroutines.
const repeatRuns = 10

// salesTable builds a deterministic table with many rows per group key
// so that group-by and join operators have real map pressure.
func salesTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustNewTable("sales", Schema{
		{Name: "id", Type: TypeInt},
		{Name: "region", Type: TypeString},
		{Name: "cell", Type: TypeInt},
		{Name: "amt", Type: TypeFloat},
	})
	regions := []string{"east", "west", "north", "south", "central"}
	for i := 0; i < 200; i++ {
		tbl.MustInsert(
			Int(int64(i)),
			Str(regions[i%len(regions)]),
			Int(int64(i%7)),
			Float(float64(i*i%101)),
		)
	}
	return tbl
}

// render flattens a table into one comparable string including row
// order, so any reordering between runs shows up as an inequality.
func render(tbl *Table) string {
	out := ""
	for _, c := range tbl.Schema {
		out += c.Name + "|"
	}
	for _, r := range tbl.Rows {
		out += "\n"
		for _, v := range r {
			out += v.Key() + "|"
		}
	}
	return out
}

// TestQueryRowOrderStable runs the same GROUP BY query ten times over
// the same database and requires byte-identical results, including row
// order. GroupBy buckets rows in a map; output must follow the
// recorded first-appearance order, never map iteration order.
func TestQueryRowOrderStable(t *testing.T) {
	db := NewDatabase()
	db.Put(salesTable(t))
	const q = `SELECT region, COUNT(id) AS n, SUM(amt) AS total FROM sales GROUP BY region`

	first := ""
	for run := 0; run < repeatRuns; run++ {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		got := render(res)
		if run == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("run %d produced different output:\nfirst:\n%s\n\nrun %d:\n%s", run, first, run, got)
		}
	}
}

// TestGroupByManyKeysStable is the higher-cardinality variant: with
// 35 distinct (region, cell) groups, map iteration order is virtually
// guaranteed to differ between runs if it leaks into the output.
func TestGroupByManyKeysStable(t *testing.T) {
	tbl := salesTable(t)
	first := ""
	for run := 0; run < repeatRuns; run++ {
		g, err := GroupBy(tbl, []string{"region", "cell"}, []Aggregate{
			{Fn: AggCount, As: "n"},
			{Fn: AggSum, Col: "amt", As: "total"},
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		got := render(g)
		if run == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("run %d: group order changed between identical runs", run)
		}
	}
}

// TestPartitionedSelfJoinStable re-runs the parallel partitioned
// self-join ten times with eight workers and requires identical row
// order each time: partitions are processed concurrently but results
// must be stitched together in sorted partition order.
func TestPartitionedSelfJoinStable(t *testing.T) {
	tbl := salesTable(t)
	outSchema := Schema{
		{Name: "a", Type: TypeInt},
		{Name: "b", Type: TypeInt},
	}
	run := func() string {
		j := PartitionedSelfJoin(tbl,
			func(r Row) string { return r[2].Key() }, // partition by cell
			func(a, b Row) bool { return a[0].AsInt() < b[0].AsInt() },
			func(a, b Row) Row { return Row{a[0], b[0]} },
			outSchema, 8)
		return render(j)
	}
	first := run()
	if first == "" {
		t.Fatal("self join produced no output")
	}
	for i := 1; i < repeatRuns; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: self-join row order changed between identical runs", i)
		}
	}
}

// TestDatabaseNamesStable requires Names to return the same sorted
// slice regardless of insertion order into the catalog map.
func TestDatabaseNamesStable(t *testing.T) {
	mk := func(names ...string) *Database {
		db := NewDatabase()
		for _, n := range names {
			db.Put(MustNewTable(n, Schema{{Name: "x", Type: TypeInt}}))
		}
		return db
	}
	a := mk("zeta", "alpha", "mid")
	b := mk("mid", "zeta", "alpha")
	want := fmt.Sprintf("%v", []string{"alpha", "mid", "zeta"})
	if got := fmt.Sprintf("%v", a.Names()); got != want {
		t.Fatalf("Names() = %s, want %s", got, want)
	}
	if got := fmt.Sprintf("%v", b.Names()); got != fmt.Sprintf("%v", a.Names()) {
		t.Fatalf("Names() depends on insertion order: %s vs %v", got, a.Names())
	}
}
