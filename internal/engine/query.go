package engine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"modeldata/internal/engine/plan"
	"modeldata/internal/prov"
)

// Query is a fluent relational query builder over tables. Builder
// methods record operations; Run (or Count/ScalarFloat) executes them.
// Errors are detected eagerly — each method validates its arguments
// against the query's schema as it is called, and the first error is
// latched and returned by Run — so error behavior is identical to the
// historical eager builder.
//
//	q, err := engine.From(people).
//		WhereFloat("age", func(a float64) bool { return a < 5 }).
//		Select("pid").
//		Run()
//
// Every builder method returns a new Query and leaves its receiver
// unchanged, which makes saved prefixes branchable:
//
//	base := engine.From(people).WhereFloat("age", adult)
//	ids := base.Select("pid")     // does not affect base
//	n, _ := base.Count()          // still the un-projected prefix
//
// Execution: when the planner is enabled (the default), Run lowers the
// query's scan/filter/join prefix into a logical plan
// (internal/engine/plan), pushes filters below joins, picks a join
// order and build sides by estimated cardinality, and executes the
// optimized plan over the columnar operators; the rest of the query
// replays as written. The planner never changes results: planner-on
// output is byte-identical to planner-off output, which in turn is the
// historical columnar-with-row-fallback execution (golden_test.go and
// planner_test.go enforce both equalities). Explain returns the
// optimized plan without executing it. Each Run builds private
// execution state, so queries and their branches may run concurrently.
type Query struct {
	src  *Table
	ops  []*qop
	err  error
	mode plannerMode

	// store, when set by FromStorage, replaces src as the scan source:
	// execution streams the storage's partitions (zone-map pruned by
	// the query's leading filters) and replays the recorded operations
	// over the concatenated blocks.
	store Storage
	// ctx, when set by WithContext, flows into storage scans.
	ctx context.Context

	// budget and spillDir override the process-wide spill policy for
	// this query: budget 0 inherits SpillDefaults, < 0 forces
	// unlimited (never spill), > 0 is the hash-footprint budget in
	// bytes. spillDir "" inherits.
	budget   int64
	spillDir string

	// cache, when set by Prepared, memoizes the join-order choice
	// across executions of the same statement.
	cache *Prepared

	// provOn, set by WithProvenance, threads why-provenance
	// annotations through execution (see provexec.go).
	provOn bool

	// name and schema describe the query's current result shape,
	// maintained eagerly by every builder method.
	name   string
	schema Schema
}

// opKind enumerates recorded operations.
type opKind uint8

const (
	opWhereRow opKind = iota // opaque row predicate
	opFilter                 // inspectable plan.Expr filter
	opSelect
	opRename
	opJoin
	opGroupBy
	opOrderBy
	opDistinct
	opLimit
	opExtend
)

// qop is one recorded operation, together with the eagerly computed
// name and schema of the query state after it.
type qop struct {
	kind   opKind
	name   string
	schema Schema

	pred Predicate // opWhereRow

	expr plan.Expr          // opFilter
	ffn  func(float64) bool // opFilter: WhereFloat closure (ColPred ref target)
	sfn  func(string) bool  // opFilter: WhereString closure

	cols []string // opSelect columns, opGroupBy keys

	oldName, newName string // opRename

	joinT        *Table // opJoin
	joinL, joinR string
	// joinFlat keeps left column names un-prefixed (SQL multi-join
	// naming); the default prefixes both sides, as the historical
	// builder always did.
	joinFlat bool

	aggs []Aggregate // opGroupBy

	col  string // opOrderBy
	desc bool

	n int // opLimit

	extName string // opExtend
	extType Type
	extFn   func(Row) Value
}

// --- planner mode ---

type plannerMode uint8

const (
	plannerDefault plannerMode = iota
	plannerForceOn
	plannerForceOff
)

// plannerDisabled is the process-wide default, inverted so the zero
// value means "planner on".
var plannerDisabled atomic.Bool

// SetPlannerDefault sets the process-wide planner default (it starts
// enabled) and returns the previous setting. Per-query WithPlanner
// overrides it. The planner affects plan choice only, never results.
func SetPlannerDefault(on bool) bool {
	return !plannerDisabled.Swap(!on)
}

// WithPlanner forces the planner on or off for this query, overriding
// the process default.
func (q *Query) WithPlanner(on bool) *Query {
	nq := *q
	if on {
		nq.mode = plannerForceOn
	} else {
		nq.mode = plannerForceOff
	}
	return &nq
}

func (q *Query) plannerOn() bool {
	switch q.mode {
	case plannerForceOn:
		return true
	case plannerForceOff:
		return false
	}
	return !plannerDisabled.Load()
}

// --- building ---

// From starts a query over t.
func From(t *Table) *Query {
	return &Query{src: t, name: t.Name, schema: t.Schema}
}

// FromStorage starts a query over a storage backend. Execution scans
// the storage's partitions — letting it prune against the query's
// leading filters — and runs the same operators as From, so results
// are byte-identical to a query over the equivalent in-memory table
// (the storage-equivalence suite in internal/colstore enforces this).
// Storage queries execute directly: the join-region planner only
// reorders multi-table joins, whose right sides are in-memory tables
// either way.
func FromStorage(st Storage) *Query {
	return &Query{store: st, name: st.StorageName(), schema: st.StorageSchema()}
}

// WithContext attaches ctx to the query's storage scans; it has no
// effect on in-memory queries.
func (q *Query) WithContext(ctx context.Context) *Query {
	nq := *q
	nq.ctx = ctx
	return &nq
}

// WithMemoryBudget bounds the estimated hash-table footprint of this
// query's joins and group-bys to budget bytes; operators over it
// Grace-partition to disk (see spill.go) with byte-identical output.
// budget <= 0 forces unlimited, overriding the process default set by
// SetSpillDefault.
func (q *Query) WithMemoryBudget(budget int64) *Query {
	nq := *q
	if budget <= 0 {
		budget = -1
	}
	nq.budget = budget
	return &nq
}

// WithSpillDir directs this query's spill files to dir instead of the
// process default (the OS temp dir).
func (q *Query) WithSpillDir(dir string) *Query {
	nq := *q
	nq.spillDir = dir
	return &nq
}

// spillConfig resolves the query's effective spill policy against the
// process defaults.
func (q *Query) spillConfig() (int64, string) {
	budget, dir := SpillDefaults()
	if q.budget != 0 {
		budget = q.budget
		if budget < 0 {
			budget = 0
		}
	}
	if q.spillDir != "" {
		dir = q.spillDir
	}
	return budget, dir
}

// push appends op to a copy of q. The full slice expression pins the
// shared prefix's capacity so sibling branches never clobber each
// other's appends.
func (q *Query) push(op *qop) *Query {
	nq := *q
	nq.ops = append(q.ops[:len(q.ops):len(q.ops)], op)
	nq.name, nq.schema = op.name, op.schema
	return &nq
}

// fail latches an error.
func (q *Query) fail(err error) *Query {
	nq := *q
	nq.err = err
	return &nq
}

// colPredFns implements predFns: it recovers the opaque closures a
// plan.ColPred references by op index.
func (q *Query) colPredFns(ref int) (func(float64) bool, func(string) bool) {
	if ref < 0 || ref >= len(q.ops) {
		return nil, nil
	}
	return q.ops[ref].ffn, q.ops[ref].sfn
}

// Where keeps rows satisfying pred. The predicate receives whole rows,
// so it is opaque to the planner and runs on the row path; prefer
// WhereEq/WhereFloat/WhereString (or WhereExpr) for filters the
// planner can push down and vectorize.
func (q *Query) Where(pred Predicate) *Query {
	if q.err != nil {
		return q
	}
	return q.push(&qop{kind: opWhereRow, pred: pred, name: q.name, schema: q.schema})
}

// WhereEq keeps rows whose column equals v.
func (q *Query) WhereEq(col string, v Value) *Query {
	if q.err != nil {
		return q
	}
	if _, err := q.schema.ColIndex(col); err != nil {
		return q.fail(err)
	}
	return q.push(&qop{
		kind: opFilter,
		expr: plan.Cmp{Op: "=", Col: col, Val: litOfValue(v)},
		name: q.name, schema: q.schema,
	})
}

// WhereFloat keeps rows for which pred holds on the numeric column.
func (q *Query) WhereFloat(col string, pred func(float64) bool) *Query {
	if q.err != nil {
		return q
	}
	if _, err := q.schema.ColIndex(col); err != nil {
		return q.fail(err)
	}
	return q.push(&qop{
		kind: opFilter,
		expr: plan.ColPred{Col: col, Fn: "float", Ref: len(q.ops)},
		ffn:  pred,
		name: q.name, schema: q.schema,
	})
}

// WhereString keeps rows for which pred holds on the string column.
func (q *Query) WhereString(col string, pred func(string) bool) *Query {
	if q.err != nil {
		return q
	}
	if _, err := q.schema.ColIndex(col); err != nil {
		return q.fail(err)
	}
	return q.push(&qop{
		kind: opFilter,
		expr: plan.ColPred{Col: col, Fn: "string", Ref: len(q.ops)},
		sfn:  pred,
		name: q.name, schema: q.schema,
	})
}

// WhereExpr keeps rows satisfying the inspectable expression e —
// the fully planner-visible filter form: comparisons, BETWEEN, and
// AND/OR/NOT compositions are pushed below joins and costed.
// plan.ColPred nodes are rejected; their closures only exist inside
// queries built through WhereFloat/WhereString.
func (q *Query) WhereExpr(e plan.Expr) *Query {
	if q.err != nil {
		return q
	}
	if hasColPred(e) {
		return q.fail(fmt.Errorf("engine: WhereExpr cannot carry plan.ColPred nodes; use WhereFloat/WhereString"))
	}
	if err := validateExprCols(e, q.schema); err != nil {
		return q.fail(err)
	}
	return q.push(&qop{kind: opFilter, expr: e, name: q.name, schema: q.schema})
}

func hasColPred(e plan.Expr) bool {
	switch t := e.(type) {
	case plan.ColPred:
		return true
	case plan.And:
		return hasColPred(t.L) || hasColPred(t.R)
	case plan.Or:
		return hasColPred(t.L) || hasColPred(t.R)
	case plan.Not:
		return hasColPred(t.E)
	}
	return false
}

// Select projects to the named columns.
func (q *Query) Select(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	schema := make(Schema, len(cols))
	for i, c := range cols {
		j, err := q.schema.ColIndex(c)
		if err != nil {
			return q.fail(err)
		}
		schema[i] = q.schema[j]
	}
	return q.push(&qop{kind: opSelect, cols: cols, name: q.name, schema: schema})
}

// Rename renames a column in the current result.
func (q *Query) Rename(oldName, newName string) *Query {
	if q.err != nil {
		return q
	}
	j, err := q.schema.ColIndex(oldName)
	if err != nil {
		return q.fail(err)
	}
	schema := q.schema.Clone()
	schema[j].Name = newName
	return q.push(&qop{kind: opRename, oldName: oldName, newName: newName, name: q.name, schema: schema})
}

// Join equijoins the current result with other on leftCol = rightCol.
// Output columns are prefixed with the table names on both sides.
func (q *Query) Join(other *Table, leftCol, rightCol string) *Query {
	return q.join(other, leftCol, rightCol, false)
}

// join records an equi-join; flat keeps left names un-prefixed.
func (q *Query) join(other *Table, leftCol, rightCol string, flat bool) *Query {
	if q.err != nil {
		return q
	}
	if _, err := q.schema.ColIndex(leftCol); err != nil {
		return q.fail(fmt.Errorf("join left: %w", err))
	}
	if _, err := other.Schema.ColIndex(rightCol); err != nil {
		return q.fail(fmt.Errorf("join right: %w", err))
	}
	schema := make(Schema, 0, len(q.schema)+len(other.Schema))
	for _, c := range q.schema {
		name := c.Name
		if !flat {
			name = q.name + "." + name
		}
		schema = append(schema, Column{Name: name, Type: c.Type})
	}
	for _, c := range other.Schema {
		schema = append(schema, Column{Name: other.Name + "." + c.Name, Type: c.Type})
	}
	return q.push(&qop{
		kind:  opJoin,
		joinT: other, joinL: leftCol, joinR: rightCol, joinFlat: flat,
		name: q.name + "_" + other.Name, schema: schema,
	})
}

// GroupBy groups by keys and computes aggs.
func (q *Query) GroupBy(keys []string, aggs ...Aggregate) *Query {
	if q.err != nil {
		return q
	}
	schema := make(Schema, 0, len(keys)+len(aggs))
	for _, k := range keys {
		j, err := q.schema.ColIndex(k)
		if err != nil {
			return q.fail(err)
		}
		schema = append(schema, Column{Name: k, Type: q.schema[j].Type})
	}
	for _, a := range aggs {
		var colType Type
		if a.Fn != AggCount {
			j, err := q.schema.ColIndex(a.Col)
			if err != nil {
				return q.fail(err)
			}
			colType = q.schema[j].Type
		}
		name := a.As
		if name == "" {
			name = a.Fn.String() + "_" + a.Col
		}
		typ := TypeFloat
		if a.Fn == AggCount {
			typ = TypeInt
		} else if a.Fn == AggMin || a.Fn == AggMax {
			typ = colType
		}
		schema = append(schema, Column{Name: name, Type: typ})
	}
	name := q.name + "_group"
	// NewTable performs the duplicate-column validation the execution
	// path would, so the error is latched now, not at Run.
	if _, err := NewTable(name, schema); err != nil {
		return q.fail(err)
	}
	return q.push(&qop{kind: opGroupBy, cols: keys, aggs: aggs, name: name, schema: schema})
}

// OrderBy sorts by the column.
func (q *Query) OrderBy(col string, desc bool) *Query {
	if q.err != nil {
		return q
	}
	if _, err := q.schema.ColIndex(col); err != nil {
		return q.fail(err)
	}
	return q.push(&qop{kind: opOrderBy, col: col, desc: desc, name: q.name, schema: q.schema})
}

// Distinct removes duplicate rows.
func (q *Query) Distinct() *Query {
	if q.err != nil {
		return q
	}
	return q.push(&qop{kind: opDistinct, name: q.name, schema: q.schema})
}

// Limit truncates to n rows.
func (q *Query) Limit(n int) *Query {
	if q.err != nil {
		return q
	}
	return q.push(&qop{kind: opLimit, n: n, name: q.name, schema: q.schema})
}

// Extend appends a computed column. The callback receives whole rows,
// so this operation is opaque to the planner and runs on the row path.
func (q *Query) Extend(name string, typ Type, f func(Row) Value) *Query {
	if q.err != nil {
		return q
	}
	schema := append(q.schema.Clone(), Column{Name: name, Type: typ})
	if err := schema.Validate(); err != nil {
		return q.fail(err)
	}
	return q.push(&qop{kind: opExtend, extName: name, extType: typ, extFn: f, name: q.name, schema: schema})
}

// --- execution ---

// exec runs the recorded operations and returns the final execution
// state. The planner, when enabled, executes the leading
// scan/filter/join region from its optimized plan; everything else
// (and everything, when the planner is off or the region cannot be
// planned) replays through the chain, which is the historical eager
// execution verbatim.
func (q *Query) exec() (*chain, error) {
	budget, dir := q.spillConfig()
	if q.store != nil {
		return q.execStorage(budget, dir)
	}
	ch := &chain{t: q.src, sc: NewScratch(), budget: budget, spillDir: dir}
	if q.provOn {
		ch.prov = &provState{arena: prov.NewArena()}
	}
	start := 0
	if q.plannerOn() {
		if n, handled := q.planRegion(ch); handled {
			start = n
		} else {
			planDirect.Add(1)
		}
	} else {
		planDirect.Add(1)
	}
	if start == 0 && ch.prov != nil {
		// The planner did not produce (annotated) region output, so the
		// source scan itself is the leaf relation.
		ch.annotateSource()
	}
	for _, op := range q.ops[start:] {
		if err := ch.apply(op, q); err != nil {
			return nil, err
		}
	}
	return ch, nil
}

// execStorage scans q.store's partitions — handing the scan the
// query's leading filters as a pruning hint — concatenates the
// surviving blocks, and replays every recorded operation over them.
// All filters re-apply in full, so pruning (which only ever skips
// partitions that cannot contain a matching row) is correctness-
// neutral.
func (q *Query) execStorage(budget int64, dir string) (*chain, error) {
	ctx := q.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Under provenance, pruning is disabled: leaf annotations index
	// rows of the full stored relation, and a pruned scan would shift
	// every index after the first skipped partition.
	var hint plan.Expr
	if !q.provOn {
		hint = q.leadingFilterExpr()
	}
	it, err := q.store.ScanPartitions(ctx, nil, hint)
	if err != nil {
		return nil, err
	}
	var parts []*ColumnBlock
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		parts = append(parts, b)
	}
	b, err := concatBlocks(q.store.StorageName(), q.store.StorageSchema(), parts)
	if err != nil {
		return nil, err
	}
	ch := &chain{sc: NewScratch(), budget: budget, spillDir: dir}
	ch.setBlock(b)
	if q.provOn {
		ch.prov = &provState{arena: prov.NewArena()}
		ch.annotateSource()
	}
	colQueries.Add(1)
	planDirect.Add(1)
	for _, op := range q.ops {
		if err := ch.apply(op, q); err != nil {
			return nil, err
		}
	}
	return ch, nil
}

// leadingFilterExpr conjoins the query's leading run of inspectable
// filters into one pruning hint, with every column name mapped back to
// its stored (scan) name, which is all zone maps can judge. The
// leading run extends through Select and Rename — both are pure name
// reshaping, so a filter written after them still provably restricts
// scan columns — and stops at the first operation that can change row
// content or multiplicity (join, group-by, distinct, extend, opaque
// predicates). Historically the run stopped at the first non-filter
// op, so a leading Select or Rename silently disabled zone-map pruning
// for every filter written after it. ColPred filters are included (the
// zone evaluator treats them as "must decode"), keeping the
// conjunction's And shape intact for the prunable conjuncts around
// them.
func (q *Query) leadingFilterExpr() plan.Expr {
	var e plan.Expr
	// toStored maps the current (lowercased) column names back to
	// stored names; nil means the identity (no reshaping seen yet).
	var toStored map[string]string
	stored := func(name string) string {
		if toStored == nil {
			return name
		}
		if s, ok := toStored[strings.ToLower(name)]; ok {
			return s
		}
		return name
	}
	for _, op := range q.ops {
		switch op.kind {
		case opFilter:
			fe := op.expr
			if toStored != nil {
				fe = plan.RenameCols(fe, stored)
			}
			if e == nil {
				e = fe
			} else {
				e = plan.And{L: e, R: fe}
			}
		case opSelect:
			nm := make(map[string]string, len(op.cols))
			for _, c := range op.cols {
				nm[strings.ToLower(c)] = stored(c)
			}
			toStored = nm
		case opRename:
			nm := make(map[string]string, len(toStored)+1)
			for k, v := range toStored {
				nm[k] = v
			}
			old := stored(op.oldName)
			delete(nm, strings.ToLower(op.oldName))
			nm[strings.ToLower(op.newName)] = old
			toStored = nm
		default:
			return e
		}
	}
	return e
}

// Run returns the result table or the first error encountered.
func (q *Query) Run() (*Table, error) {
	if q.err != nil {
		return nil, q.err
	}
	ch, err := q.exec()
	if err != nil {
		return nil, err
	}
	t := ch.table()
	if ch.prov != nil {
		t = stripProv(ch.prov.arena, t)
	}
	return t, nil
}

// MustRun returns the result table, panicking on error; for tests and
// examples with statically known schemas.
func (q *Query) MustRun() *Table {
	t, err := q.Run()
	if err != nil {
		panic(err)
	}
	return t
}

// Count runs the query and returns its row count.
func (q *Query) Count() (int, error) {
	if q.err != nil {
		return 0, q.err
	}
	ch, err := q.exec()
	if err != nil {
		return 0, err
	}
	if ch.b != nil {
		return ch.b.Len(), nil
	}
	return ch.t.Len(), nil
}

// ScalarFloat runs the query, which must produce exactly one row and one
// numeric column, and returns that value. This is the shape of the
// DEFINE ... AS (SELECT COUNT(...) ...) statements in Algorithm 1.
func (q *Query) ScalarFloat() (float64, error) {
	t, err := q.Run()
	if err != nil {
		return 0, err
	}
	if t.Len() != 1 || len(t.Schema) != 1 {
		return 0, fmt.Errorf("engine: scalar query returned %d rows × %d cols", t.Len(), len(t.Schema))
	}
	v := t.Rows[0][0]
	if !v.IsNumeric() {
		return 0, fmt.Errorf("%w: scalar query returned %s", ErrTypeClash, v.Type())
	}
	return v.AsFloat(), nil
}

// --- the chain: direct (planner-off) execution ---

// chain is the direct executor: the historical eager Query execution,
// one operation at a time. The first vectorizable operation decodes
// the state into a ColumnBlock and subsequent operations run over
// column vectors; tables whose values cannot be decoded into uniform
// columns fall back to the row operators — both paths produce
// byte-identical results (golden_test.go). The planner-off path runs
// entirely here, and the planned path hands its region output to a
// chain for the remaining operations, so every query ends in this
// executor.
type chain struct {
	t     *Table       // row form; nil when b carries the state
	b     *ColumnBlock // columnar form; nil when t carries the state
	sc    *Scratch     // shared per-execution operator scratch
	noCol bool         // latched: table failed columnar decode, stay on rows

	// budget and spillDir are the execution's resolved spill policy,
	// applied by the hash join and group-by operators (0 = never
	// spill).
	budget   int64
	spillDir string

	// prov, when non-nil, is the execution's provenance context: the
	// state carries a hidden annotation column (see provexec.go).
	prov *provState
}

// table returns the row form of the current state, materializing the
// block if needed.
func (c *chain) table() *Table {
	if c.t != nil {
		return c.t
	}
	return c.b.ToTable()
}

// block returns the columnar form of the current state, decoding the
// table on first use, or nil when the data cannot be decoded (the
// caller then uses the row path). Decode failure is latched so a chain
// of operations on an undecodable table converts at most once.
func (c *chain) block() *ColumnBlock {
	if c.b != nil {
		return c.b
	}
	if c.noCol || c.t == nil {
		return nil
	}
	b, err := FromTable(c.t)
	if err != nil {
		// Silent before the observability layer: latching to the row
		// path is correct (both paths agree bit-for-bit) but slow, so
		// count and log it (metrics.go).
		noteColFallback(err)
		c.noCol = true
		return nil
	}
	colQueries.Add(1)
	c.b = b
	return b
}

func (c *chain) setBlock(b *ColumnBlock) { c.t, c.b = nil, b }
func (c *chain) setTable(t *Table)       { c.t, c.b = t, nil }

// apply executes one recorded operation against the current state.
func (c *chain) apply(op *qop, q *Query) error {
	if c.prov != nil {
		if handled, err := c.applyProv(op, q); handled {
			return err
		}
	}
	switch op.kind {
	case opWhereRow:
		c.setTable(Select(c.table(), op.pred))
		return nil

	case opFilter:
		if b := c.block(); b != nil {
			nb, err := c.filterBlock(b, op, q)
			if err != nil {
				return err
			}
			c.setBlock(nb)
			return nil
		}
		t := c.table()
		pred, err := compileExprRow(op.expr, t.Schema, q)
		if err != nil {
			return err
		}
		c.setTable(Select(t, pred))
		return nil

	case opSelect:
		if b := c.block(); b != nil {
			nb, err := b.Project(op.cols...)
			if err != nil {
				return err
			}
			c.setBlock(nb)
			return nil
		}
		t, err := Project(c.table(), op.cols...)
		if err != nil {
			return err
		}
		c.setTable(t)
		return nil

	case opRename:
		if b := c.block(); b != nil {
			nb, err := b.Rename(op.oldName, op.newName)
			if err != nil {
				return err
			}
			c.setBlock(nb)
			return nil
		}
		t, err := Rename(c.table(), op.oldName, op.newName)
		if err != nil {
			return err
		}
		c.setTable(t)
		return nil

	case opJoin:
		// The join's output names are overwritten with the eagerly
		// computed schema: a no-op for the default (both-sides-prefixed)
		// naming, and the mechanism that implements flat SQL naming.
		// Column order is left++right on both physical paths, so the
		// overwrite is positionally safe.
		if b := c.block(); b != nil {
			if ob, err := FromTable(op.joinT); err == nil {
				nb, err := b.equiJoinBudget(ob, op.joinL, op.joinR, c.sc, c.budget, c.spillDir)
				if err != nil {
					return err
				}
				nb.Name = op.name
				nb.Schema = op.schema.Clone()
				c.setBlock(nb)
				return nil
			}
		}
		t, err := EquiJoin(c.table(), op.joinT, op.joinL, op.joinR)
		if err != nil {
			return err
		}
		t.Name = op.name
		t.Schema = op.schema.Clone()
		c.setTable(t)
		return nil

	case opGroupBy:
		if b := c.block(); b != nil {
			t, err := b.groupByBudget(op.cols, op.aggs, c.sc, c.budget, c.spillDir)
			if err != nil {
				return err
			}
			c.setTable(t)
			return nil
		}
		t, err := GroupBy(c.table(), op.cols, op.aggs)
		if err != nil {
			return err
		}
		c.setTable(t)
		return nil

	case opOrderBy:
		if b := c.block(); b != nil {
			nb, err := b.OrderBy(op.col, op.desc)
			if err != nil {
				return err
			}
			c.setBlock(nb)
			return nil
		}
		t, err := OrderBy(c.table(), op.col, op.desc)
		if err != nil {
			return err
		}
		c.setTable(t)
		return nil

	case opDistinct:
		if b := c.block(); b != nil {
			c.setBlock(b.Distinct(c.sc))
			return nil
		}
		c.setTable(Distinct(c.table()))
		return nil

	case opLimit:
		if b := c.block(); b != nil {
			c.setBlock(b.Limit(op.n))
			return nil
		}
		c.setTable(Limit(c.table(), op.n))
		return nil

	case opExtend:
		t, err := Extend(c.table(), op.extName, op.extType, op.extFn)
		if err != nil {
			return err
		}
		c.setTable(t)
		return nil
	}
	return fmt.Errorf("engine: unknown query op %d", op.kind)
}

// filterBlock applies an opFilter on the columnar path, using the
// typed single-column operators where the expression shape permits
// (the historical WhereEq/WhereFloat/WhereString fast paths) and the
// generic compiled predicate otherwise.
func (c *chain) filterBlock(b *ColumnBlock, op *qop, q *Query) (*ColumnBlock, error) {
	switch e := op.expr.(type) {
	case plan.Cmp:
		if e.Op == "=" {
			return b.WhereEq(e.Col, valOfLit(e.Val))
		}
	case plan.ColPred:
		switch {
		case e.Fn == "float" && op.ffn != nil:
			return b.WhereFloat(e.Col, op.ffn)
		case e.Fn == "string" && op.sfn != nil:
			return b.WhereString(e.Col, op.sfn)
		}
	}
	pred, err := compileExprBlock(op.expr, b, q)
	if err != nil {
		return nil, err
	}
	return b.whereFunc(pred), nil
}
