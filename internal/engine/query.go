package engine

import (
	"fmt"
)

// Query is a fluent relational query builder over tables. Operations
// are applied eagerly; the first error is latched and returned by Run.
//
//	q, err := engine.From(people).
//		WhereFloat("age", func(a float64) bool { return a < 5 }).
//		Select("pid").
//		Run()
//
// Every builder method returns a new Query and leaves its receiver
// unchanged (tables are immutable-by-construction, so the copy is one
// word), which makes saved prefixes branchable:
//
//	base := engine.From(people).WhereFloat("age", adult)
//	ids := base.Select("pid")     // does not affect base
//	n, _ := base.Count()          // still the un-projected prefix
type Query struct {
	t   *Table
	err error
}

// From starts a query over t.
func From(t *Table) *Query { return &Query{t: t} }

// branch returns a copy of q for a builder method to advance, so the
// receiver stays reusable as a shared prefix.
func (q *Query) branch() *Query {
	c := *q
	return &c
}

// Run returns the result table or the first error encountered.
func (q *Query) Run() (*Table, error) {
	if q.err != nil {
		return nil, q.err
	}
	return q.t, nil
}

// MustRun returns the result table, panicking on error; for tests and
// examples with statically known schemas.
func (q *Query) MustRun() *Table {
	t, err := q.Run()
	if err != nil {
		panic(err)
	}
	return t
}

// Where keeps rows satisfying pred.
func (q *Query) Where(pred Predicate) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	nq.t = Select(q.t, pred)
	return nq
}

// WhereEq keeps rows whose column equals v.
func (q *Query) WhereEq(col string, v Value) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	j, err := q.t.ColIndex(col)
	if err != nil {
		nq.err = err
		return nq
	}
	nq.t = Select(q.t, func(r Row) bool { return r[j].Equal(v) })
	return nq
}

// WhereFloat keeps rows for which pred holds on the numeric column.
func (q *Query) WhereFloat(col string, pred func(float64) bool) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	j, err := q.t.ColIndex(col)
	if err != nil {
		nq.err = err
		return nq
	}
	nq.t = Select(q.t, func(r Row) bool { return r[j].IsNumeric() && pred(r[j].AsFloat()) })
	return nq
}

// WhereString keeps rows for which pred holds on the string column.
func (q *Query) WhereString(col string, pred func(string) bool) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	j, err := q.t.ColIndex(col)
	if err != nil {
		nq.err = err
		return nq
	}
	nq.t = Select(q.t, func(r Row) bool { return r[j].Type() == TypeString && pred(r[j].AsString()) })
	return nq
}

// Select projects to the named columns.
func (q *Query) Select(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	nq.t, nq.err = Project(q.t, cols...)
	return nq
}

// Join equijoins the current result with other on leftCol = rightCol.
func (q *Query) Join(other *Table, leftCol, rightCol string) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	nq.t, nq.err = EquiJoin(q.t, other, leftCol, rightCol)
	return nq
}

// GroupBy groups by keys and computes aggs.
func (q *Query) GroupBy(keys []string, aggs ...Aggregate) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	nq.t, nq.err = GroupBy(q.t, keys, aggs)
	return nq
}

// OrderBy sorts by the column.
func (q *Query) OrderBy(col string, desc bool) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	nq.t, nq.err = OrderBy(q.t, col, desc)
	return nq
}

// Distinct removes duplicate rows.
func (q *Query) Distinct() *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	nq.t = Distinct(q.t)
	return nq
}

// Limit truncates to n rows.
func (q *Query) Limit(n int) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	nq.t = Limit(q.t, n)
	return nq
}

// Extend appends a computed column.
func (q *Query) Extend(name string, typ Type, f func(Row) Value) *Query {
	if q.err != nil {
		return q
	}
	nq := q.branch()
	nq.t, nq.err = Extend(q.t, name, typ, f)
	return nq
}

// Count runs the query and returns its row count.
func (q *Query) Count() (int, error) {
	t, err := q.Run()
	if err != nil {
		return 0, err
	}
	return t.Len(), nil
}

// ScalarFloat runs the query, which must produce exactly one row and one
// numeric column, and returns that value. This is the shape of the
// DEFINE ... AS (SELECT COUNT(...) ...) statements in Algorithm 1.
func (q *Query) ScalarFloat() (float64, error) {
	t, err := q.Run()
	if err != nil {
		return 0, err
	}
	if t.Len() != 1 || len(t.Schema) != 1 {
		return 0, fmt.Errorf("engine: scalar query returned %d rows × %d cols", t.Len(), len(t.Schema))
	}
	v := t.Rows[0][0]
	if !v.IsNumeric() {
		return 0, fmt.Errorf("%w: scalar query returned %s", ErrTypeClash, v.Type())
	}
	return v.AsFloat(), nil
}
