package engine

import (
	"fmt"
)

// Query is a fluent relational query builder over tables. Operations
// are applied eagerly; the first error is latched and returned by Run.
//
//	q, err := engine.From(people).
//		WhereFloat("age", func(a float64) bool { return a < 5 }).
//		Select("pid").
//		Run()
//
// Every builder method returns a new Query and leaves its receiver
// unchanged, which makes saved prefixes branchable:
//
//	base := engine.From(people).WhereFloat("age", adult)
//	ids := base.Select("pid")     // does not affect base
//	n, _ := base.Count()          // still the un-projected prefix
//
// Execution is columnar: the first vectorizable operation decodes the
// table into a ColumnBlock (see column.go) and subsequent operations
// run over column vectors, sharing the scratch buffers of the chain;
// Run materializes rows again. Tables whose values cannot be decoded
// into uniform columns fall back to the row operators — both paths
// produce byte-identical results (golden_test.go), so the choice is
// invisible. Because a chain reuses one Scratch, branches of a single
// chain must not be advanced concurrently; build separate chains with
// From for concurrent query execution.
type Query struct {
	t     *Table       // row form; nil when b carries the state
	b     *ColumnBlock // columnar form; nil when t carries the state
	sc    *Scratch     // shared per-chain operator scratch
	noCol bool         // latched: table failed columnar decode, stay on rows
	err   error
}

// From starts a query over t.
func From(t *Table) *Query { return &Query{t: t, sc: NewScratch()} }

// branch returns a copy of q for a builder method to advance, so the
// receiver stays reusable as a shared prefix.
func (q *Query) branch() *Query {
	c := *q
	return &c
}

// table returns the row form of the current state, materializing the
// block if needed.
func (q *Query) table() *Table {
	if q.t != nil {
		return q.t
	}
	return q.b.ToTable()
}

// block returns the columnar form of the current state, decoding the
// table on first use, or nil when the data cannot be decoded (the
// caller then uses the row path). Decode failure is latched so a chain
// of operations on an undecodable table converts at most once.
func (q *Query) block() *ColumnBlock {
	if q.b != nil {
		return q.b
	}
	if q.noCol || q.t == nil {
		return nil
	}
	b, err := FromTable(q.t)
	if err != nil {
		// Silent before the observability layer: latching to the row
		// path is correct (both paths agree bit-for-bit) but slow, so
		// count and log it (metrics.go).
		noteColFallback(err)
		q.noCol = true
		return nil
	}
	colQueries.Add(1)
	q.b = b
	return b
}

// advanceBlock moves the query to a new columnar state.
func (q *Query) advanceBlock(b *ColumnBlock) *Query {
	nq := q.branch()
	nq.t, nq.b = nil, b
	return nq
}

// advanceTable moves the query to a new row state.
func (q *Query) advanceTable(t *Table) *Query {
	nq := q.branch()
	nq.t, nq.b = t, nil
	return nq
}

// fail latches an error.
func (q *Query) fail(err error) *Query {
	nq := q.branch()
	nq.err = err
	return nq
}

// Run returns the result table or the first error encountered.
func (q *Query) Run() (*Table, error) {
	if q.err != nil {
		return nil, q.err
	}
	return q.table(), nil
}

// MustRun returns the result table, panicking on error; for tests and
// examples with statically known schemas.
func (q *Query) MustRun() *Table {
	t, err := q.Run()
	if err != nil {
		panic(err)
	}
	return t
}

// Where keeps rows satisfying pred. The predicate receives whole rows,
// so this operation runs on the row path (rows are shared, not
// copied); prefer WhereEq/WhereFloat/WhereString for vectorized
// single-column filters.
func (q *Query) Where(pred Predicate) *Query {
	if q.err != nil {
		return q
	}
	return q.advanceTable(Select(q.table(), pred))
}

// WhereEq keeps rows whose column equals v.
func (q *Query) WhereEq(col string, v Value) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		nb, err := b.WhereEq(col, v)
		if err != nil {
			return q.fail(err)
		}
		return q.advanceBlock(nb)
	}
	t := q.table()
	j, err := t.ColIndex(col)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(Select(t, func(r Row) bool { return r[j].Equal(v) }))
}

// WhereFloat keeps rows for which pred holds on the numeric column.
func (q *Query) WhereFloat(col string, pred func(float64) bool) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		nb, err := b.WhereFloat(col, pred)
		if err != nil {
			return q.fail(err)
		}
		return q.advanceBlock(nb)
	}
	t := q.table()
	j, err := t.ColIndex(col)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(Select(t, func(r Row) bool { return r[j].IsNumeric() && pred(r[j].AsFloat()) }))
}

// WhereString keeps rows for which pred holds on the string column.
func (q *Query) WhereString(col string, pred func(string) bool) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		nb, err := b.WhereString(col, pred)
		if err != nil {
			return q.fail(err)
		}
		return q.advanceBlock(nb)
	}
	t := q.table()
	j, err := t.ColIndex(col)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(Select(t, func(r Row) bool { return r[j].Type() == TypeString && pred(r[j].AsString()) }))
}

// Select projects to the named columns.
func (q *Query) Select(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		nb, err := b.Project(cols...)
		if err != nil {
			return q.fail(err)
		}
		return q.advanceBlock(nb)
	}
	t, err := Project(q.table(), cols...)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(t)
}

// Rename renames a column in the current result.
func (q *Query) Rename(oldName, newName string) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		nb, err := b.Rename(oldName, newName)
		if err != nil {
			return q.fail(err)
		}
		return q.advanceBlock(nb)
	}
	t, err := Rename(q.table(), oldName, newName)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(t)
}

// Join equijoins the current result with other on leftCol = rightCol.
func (q *Query) Join(other *Table, leftCol, rightCol string) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		if ob, err := FromTable(other); err == nil {
			nb, err := b.EquiJoin(ob, leftCol, rightCol, q.sc)
			if err != nil {
				return q.fail(err)
			}
			return q.advanceBlock(nb)
		}
	}
	t, err := EquiJoin(q.table(), other, leftCol, rightCol)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(t)
}

// GroupBy groups by keys and computes aggs.
func (q *Query) GroupBy(keys []string, aggs ...Aggregate) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		t, err := b.GroupBy(keys, aggs, q.sc)
		if err != nil {
			return q.fail(err)
		}
		return q.advanceTable(t)
	}
	t, err := GroupBy(q.table(), keys, aggs)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(t)
}

// OrderBy sorts by the column.
func (q *Query) OrderBy(col string, desc bool) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		nb, err := b.OrderBy(col, desc)
		if err != nil {
			return q.fail(err)
		}
		return q.advanceBlock(nb)
	}
	t, err := OrderBy(q.table(), col, desc)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(t)
}

// Distinct removes duplicate rows.
func (q *Query) Distinct() *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		return q.advanceBlock(b.Distinct(q.sc))
	}
	return q.advanceTable(Distinct(q.table()))
}

// Limit truncates to n rows.
func (q *Query) Limit(n int) *Query {
	if q.err != nil {
		return q
	}
	if b := q.block(); b != nil {
		return q.advanceBlock(b.Limit(n))
	}
	return q.advanceTable(Limit(q.table(), n))
}

// Extend appends a computed column. The callback receives whole rows,
// so this operation runs on the row path.
func (q *Query) Extend(name string, typ Type, f func(Row) Value) *Query {
	if q.err != nil {
		return q
	}
	t, err := Extend(q.table(), name, typ, f)
	if err != nil {
		return q.fail(err)
	}
	return q.advanceTable(t)
}

// Count runs the query and returns its row count.
func (q *Query) Count() (int, error) {
	if q.err != nil {
		return 0, q.err
	}
	if q.b != nil {
		return q.b.Len(), nil
	}
	return q.t.Len(), nil
}

// ScalarFloat runs the query, which must produce exactly one row and one
// numeric column, and returns that value. This is the shape of the
// DEFINE ... AS (SELECT COUNT(...) ...) statements in Algorithm 1.
func (q *Query) ScalarFloat() (float64, error) {
	t, err := q.Run()
	if err != nil {
		return 0, err
	}
	if t.Len() != 1 || len(t.Schema) != 1 {
		return 0, fmt.Errorf("engine: scalar query returned %d rows × %d cols", t.Len(), len(t.Schema))
	}
	v := t.Rows[0][0]
	if !v.IsNumeric() {
		return 0, fmt.Errorf("%w: scalar query returned %s", ErrTypeClash, v.Type())
	}
	return v.AsFloat(), nil
}
