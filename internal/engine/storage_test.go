package engine

// Tests for the storage seam on the engine side: *Table as a Storage,
// partition concatenation, and the leading-filter pruning hint.

import (
	"context"
	"errors"
	"testing"

	"modeldata/internal/engine/plan"
	"modeldata/internal/rng"
)

func TestTableImplementsStorage(t *testing.T) {
	tbl := randomTable(rng.New(31), "t", 40)
	var st Storage = tbl
	if st.StorageName() != "t" || st.NumRows() != 40 {
		t.Fatalf("Storage views: name=%q rows=%d", st.StorageName(), st.NumRows())
	}
	it, err := st.ScanPartitions(context.Background(), nil, nil)
	if err != nil {
		t.Fatalf("ScanPartitions: %v", err)
	}
	b, err := it.Next()
	if err != nil || b == nil {
		t.Fatalf("Next: %v, %v", b, err)
	}
	if b.Len() != 40 {
		t.Fatalf("partition has %d rows", b.Len())
	}
	if nxt, err := it.Next(); nxt != nil || err != nil {
		t.Fatalf("second Next should end iteration: %v, %v", nxt, err)
	}
	stats := it.Stats()
	if stats.Partitions != 1 || stats.Scanned != 1 || stats.BlocksPruned != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	requireSameTable(t, "table-as-storage", tbl, b.ToTable())
}

func TestTableStorageProjection(t *testing.T) {
	tbl := randomTable(rng.New(37), "t", 20)
	it, err := tbl.ScanPartitions(context.Background(), []string{"x", "tag"}, nil)
	if err != nil {
		t.Fatalf("ScanPartitions: %v", err)
	}
	b, err := it.Next()
	if err != nil || b == nil {
		t.Fatalf("Next: %v, %v", b, err)
	}
	if len(b.Schema) != 2 || b.Schema[0].Name != "x" || b.Schema[1].Name != "tag" {
		t.Fatalf("projected schema = %v", b.Schema)
	}
}

func TestFromStorageOverTableMatchesFrom(t *testing.T) {
	tbl := randomTable(rng.New(41), "t", 120)
	want, err := From(tbl).WhereFloat("x", func(v float64) bool { return v > 0 }).
		OrderBy("id", false).Run()
	if err != nil {
		t.Fatalf("From: %v", err)
	}
	got, err := FromStorage(tbl).WhereFloat("x", func(v float64) bool { return v > 0 }).
		OrderBy("id", false).Run()
	if err != nil {
		t.Fatalf("FromStorage: %v", err)
	}
	requireSameTable(t, "storage over table", want, got)
}

func TestConcatBlocks(t *testing.T) {
	r := rng.New(43)
	full := randomTable(r, "c", 90)
	var parts []*ColumnBlock
	for lo := 0; lo < 90; lo += 30 {
		sub := &Table{Name: "c", Schema: full.Schema, Rows: full.Rows[lo : lo+30]}
		parts = append(parts, mustBlock(t, sub))
	}
	b, err := concatBlocks("c", full.Schema, parts)
	if err != nil {
		t.Fatalf("concatBlocks: %v", err)
	}
	requireSameTable(t, "concat", full, b.ToTable())

	// Zero partitions give an empty block with the schema intact.
	eb, err := concatBlocks("c", full.Schema, nil)
	if err != nil {
		t.Fatalf("concatBlocks(nil): %v", err)
	}
	if eb.Len() != 0 || !eb.Schema.Equal(full.Schema) {
		t.Fatalf("empty concat: len=%d schema=%v", eb.Len(), eb.Schema)
	}
}

func TestLeadingFilterExpr(t *testing.T) {
	tbl := randomTable(rng.New(47), "t", 10)

	if e := From(tbl).leadingFilterExpr(); e != nil {
		t.Fatalf("no ops should give nil hint, got %v", e)
	}

	q := From(tbl).
		WhereEq("tag", Str("a")).
		WhereFloat("x", func(float64) bool { return true }).
		OrderBy("id", false).
		WhereEq("flag", Bool(true)) // behind OrderBy: not a leading filter
	e := q.leadingFilterExpr()
	and, ok := e.(plan.And)
	if !ok {
		t.Fatalf("hint = %T, want plan.And of the two leading filters", e)
	}
	if cmp, ok := and.L.(plan.Cmp); !ok || cmp.Col != "tag" {
		t.Fatalf("left conjunct = %v", and.L)
	}
	if _, ok := and.R.(plan.ColPred); !ok {
		t.Fatalf("right conjunct = %v, want the ColPred placeholder", and.R)
	}
}

func TestFloatColumnErrorClasses(t *testing.T) {
	tbl := &Table{Name: "e", Schema: Schema{
		{Name: "s", Type: TypeString},
	}, Rows: []Row{{Str("x")}}}
	if _, err := tbl.FloatColumn("s"); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("FloatColumn on string col: %v, want ErrNotNumeric", err)
	}
	if _, err := tbl.FloatColumn("missing"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("FloatColumn on missing col: %v, want ErrNoColumn", err)
	}
}

func TestDatabaseCloneSharesStorages(t *testing.T) {
	db := NewDatabase()
	tbl := randomTable(rng.New(77), "facts", 25)
	db.PutStorage(tbl)

	clone := db.Clone()
	got, ok := clone.Storage("facts")
	if !ok {
		t.Fatal("clone lost the registered storage")
	}
	if got != Storage(tbl) {
		t.Fatal("clone should share the read-only backend, not copy it")
	}

	// The registration maps are independent: adding to the clone must
	// not leak into the original.
	other := randomTable(rng.New(78), "extra", 5)
	clone.PutStorage(other)
	if _, ok := db.Storage("extra"); ok {
		t.Fatal("registering on the clone mutated the original database")
	}
}
