package engine

import (
	"fmt"
	"strings"
	"testing"

	"modeldata/internal/engine/plan"
	"modeldata/internal/obs"
	"modeldata/internal/rng"
)

// --- fixed star schema for golden plan tests ---

// starDB builds the canonical 3-table star: a wide fact table, a
// medium dimension on gid, and a single-row dimension on tag. Written
// join order (fact⋈med, then ⋈tiny) is deliberately the bad one: the
// tiny join filters almost everything, so a cost-based planner must
// run it first.
func starDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase()

	fact := MustNewTable("fact", Schema{
		{Name: "id", Type: TypeInt},
		{Name: "gid", Type: TypeInt},
		{Name: "tag", Type: TypeString},
		{Name: "val", Type: TypeFloat},
	})
	for i := 0; i < 2000; i++ {
		fact.MustInsert(
			Int(int64(i)),
			Int(int64(i%64)),
			Str(fmt.Sprintf("t%02d", i%16)),
			Float(float64(i)+0.5),
		)
	}
	db.Put(fact)

	med := MustNewTable("med", Schema{
		{Name: "gid", Type: TypeInt},
		{Name: "region", Type: TypeString},
	})
	for g := 0; g < 64; g++ {
		med.MustInsert(Int(int64(g)), Str(fmt.Sprintf("r%d", g%4)))
	}
	db.Put(med)

	tiny := MustNewTable("tiny", Schema{
		{Name: "tag", Type: TypeString},
		{Name: "label", Type: TypeString},
	})
	tiny.MustInsert(Str("t03"), Str("the-one"))
	db.Put(tiny)

	return db
}

const starSQL = "SELECT fact.val, med.region, tiny.label " +
	"FROM fact JOIN med ON fact.gid = med.gid JOIN tiny ON fact.tag = tiny.tag " +
	"WHERE fact.val > 100"

// explainText runs EXPLAIN over sql and returns the rendered plan.
func explainText(t *testing.T, db *Database, sql string) string {
	t.Helper()
	out, err := db.Query("EXPLAIN " + sql)
	if err != nil {
		t.Fatalf("EXPLAIN: %v", err)
	}
	var lines []string
	for _, r := range out.Rows {
		lines = append(lines, r[0].AsString())
	}
	return strings.Join(lines, "\n")
}

// TestExplainReordersStarJoin pins the issue's acceptance criterion:
// EXPLAIN over a 3-table join shows a cost-chosen join order that
// differs from the written order. The written order joins med first;
// the plan must join tiny first (it eliminates 15/16 of the fact
// table) and keep the pushed filter below both joins.
func TestExplainReordersStarJoin(t *testing.T) {
	db := starDB(t)
	text := explainText(t, db, starSQL)

	medJoin := strings.Index(text, "join fact.gid = med.gid")
	tinyJoin := strings.Index(text, "join fact.tag = tiny.tag")
	if medJoin < 0 || tinyJoin < 0 {
		t.Fatalf("missing join lines:\n%s", text)
	}
	// Deeper in the text tree = executed earlier. The tiny join must be
	// the inner (first) join even though it was written second.
	if !(medJoin < tinyJoin) {
		t.Fatalf("tiny join not reordered inside med join:\n%s", text)
	}

	// Pushdown: the WHERE was written above both joins but must render
	// directly above the fact scan, below both join lines.
	filt := strings.Index(text, "filter val > 100")
	scan := strings.Index(text, "scan fact")
	if filt < 0 || scan < 0 {
		t.Fatalf("missing filter/scan lines:\n%s", text)
	}
	if !(tinyJoin < filt && filt < scan) {
		t.Fatalf("filter not pushed below joins:\n%s", text)
	}

	// Projection pruning: the fact scan must not read the unused id.
	if !strings.Contains(text, "scan fact rows=2000 cols=[gid,tag,val]") {
		t.Fatalf("fact scan not pruned to gid,tag,val:\n%s", text)
	}
}

// TestExplainWrittenOrderWhenPlannerOff pins the planner-off contract:
// EXPLAIN renders the written order, no reordering.
func TestExplainWrittenOrderWhenPlannerOff(t *testing.T) {
	db := starDB(t)
	prev := SetPlannerDefault(false)
	defer SetPlannerDefault(prev)
	text := explainText(t, db, starSQL)

	medJoin := strings.Index(text, "join fact.gid = med.gid")
	tinyJoin := strings.Index(text, "join fact.tag = tiny.tag")
	if medJoin < 0 || tinyJoin < 0 {
		t.Fatalf("missing join lines:\n%s", text)
	}
	if !(tinyJoin < medJoin) {
		t.Fatalf("planner-off EXPLAIN should show written order (med inside tiny):\n%s", text)
	}
}

// TestExplainJSON checks EXPLAIN JSON emits one row holding a plan
// document that parses back into the same tree as the text rendering.
func TestExplainJSON(t *testing.T) {
	db := starDB(t)
	out, err := db.Query("EXPLAIN JSON " + starSQL)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || len(out.Schema) != 1 {
		t.Fatalf("EXPLAIN JSON shape = %d×%d, want 1×1", out.Len(), len(out.Schema))
	}
	tree, err := plan.FromJSON([]byte(out.Rows[0][0].AsString()))
	if err != nil {
		t.Fatalf("EXPLAIN JSON did not parse: %v", err)
	}
	if text := explainText(t, db, starSQL); strings.TrimRight(tree.Text(), "\n") != text {
		t.Fatalf("JSON plan renders differently:\n%s\nvs text EXPLAIN:\n%s", tree.Text(), text)
	}
}

// TestQueryExplain drives Explain through the builder API, including a
// tail the planner cannot absorb (group-by above the join region).
func TestQueryExplain(t *testing.T) {
	db := starDB(t)
	fact, _ := db.Get("fact")
	med, _ := db.Get("med")
	tree, err := From(fact).
		Join(med, "gid", "gid").
		WhereExpr(plan.Cmp{Op: ">", Col: "fact.val", Val: plan.FloatLit(500)}).
		GroupBy([]string{"med.region"}, Aggregate{Fn: AggCount, As: "n"}).
		Explain()
	if err != nil {
		t.Fatal(err)
	}
	text := tree.Text()
	for _, want := range []string{"aggregate keys=[med.region]", "join fact.gid = med.gid", "filter val > 500", "scan fact"} {
		if !strings.Contains(text, want) {
			t.Fatalf("builder Explain missing %q:\n%s", want, text)
		}
	}
}

// TestPlannerOnOffGolden runs a battery of fixed SQL queries with the
// planner on and off and requires byte-identical tables — same rows,
// same order, same float bits.
func TestPlannerOnOffGolden(t *testing.T) {
	db := starDB(t)
	queries := []string{
		starSQL,
		"SELECT * FROM fact JOIN med ON fact.gid = med.gid JOIN tiny ON fact.tag = tiny.tag",
		"SELECT fact.id, med.region FROM fact JOIN med ON fact.gid = med.gid WHERE med.region = 'r2' AND fact.val < 250",
		"SELECT med.region, COUNT(fact.id) AS n, SUM(fact.val) AS total FROM fact JOIN med ON fact.gid = med.gid " +
			"JOIN tiny ON fact.tag = tiny.tag WHERE fact.val > 42 GROUP BY med.region ORDER BY n DESC",
		"SELECT DISTINCT med.region FROM fact JOIN med ON fact.gid = med.gid WHERE fact.val BETWEEN 100 AND 900 ORDER BY med.region",
		"SELECT fact.val FROM fact JOIN med ON fact.gid = med.gid JOIN tiny ON fact.tag = tiny.tag " +
			"WHERE med.region = 'r3' OR fact.val < 10 ORDER BY fact.val LIMIT 25",
		"SELECT fact.id FROM fact JOIN tiny ON fact.tag = tiny.tag WHERE NOT fact.val > 1000",
	}
	for i, sql := range queries {
		prev := SetPlannerDefault(false)
		off, errOff := db.Query(sql)
		SetPlannerDefault(true)
		on, errOn := db.Query(sql)
		SetPlannerDefault(prev)
		if errOff != nil || errOn != nil {
			t.Fatalf("query %d: off err=%v on err=%v", i, errOff, errOn)
		}
		requireSameTable(t, fmt.Sprintf("golden query %d", i), off, on)
	}
}

// --- randomized equivalence ---

// randomPlannerExpr builds a random planner-visible predicate over a
// column of the given schema (prefix-qualified names included).
func randomPlannerExpr(r *rng.Stream, schema Schema) plan.Expr {
	c := schema[r.Intn(len(schema))]
	switch c.Type {
	case TypeInt:
		if r.Intn(2) == 0 {
			lo := int64(r.Intn(7)) - 3
			return plan.Between{Col: c.Name, Lo: plan.IntLit(lo), Hi: plan.IntLit(lo + int64(r.Intn(4)))}
		}
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return plan.Cmp{Op: ops[r.Intn(len(ops))], Col: c.Name, Val: plan.IntLit(int64(r.Intn(7)) - 3)}
	case TypeFloat:
		ops := []string{"=", "<", ">="}
		return plan.Cmp{Op: ops[r.Intn(len(ops))], Col: c.Name, Val: plan.FloatLit(float64(r.Intn(7)) - 3)}
	case TypeString:
		choices := []string{"", "a", "ab", "xyz"}
		return plan.Cmp{Op: "=", Col: c.Name, Val: plan.StringLit(choices[r.Intn(len(choices))])}
	default:
		return plan.Cmp{Op: "=", Col: c.Name, Val: plan.BoolLit(r.Intn(2) == 0)}
	}
}

// combineExpr randomly wraps leaves in AND/OR/NOT so pushdown sees
// multi-conjunct and non-decomposable shapes.
func combineExpr(r *rng.Stream, schema Schema) plan.Expr {
	e := randomPlannerExpr(r, schema)
	switch r.Intn(4) {
	case 0:
		return plan.And{L: e, R: randomPlannerExpr(r, schema)}
	case 1:
		return plan.Or{L: e, R: randomPlannerExpr(r, schema)}
	case 2:
		return plan.Not{E: e}
	}
	return e
}

// TestPlannerRandomizedEquivalence is the randomized half of the
// acceptance suite: for hundreds of generated multi-join queries over
// adversarial data (NaNs, negative zero, NUL-bearing strings, heavy
// key collisions), the planner-on result must be byte-identical to the
// planner-off (written order) result.
func TestPlannerRandomizedEquivalence(t *testing.T) {
	r := rng.New(1234)
	joinCols := []string{"id", "tag", "flag"}
	for trial := 0; trial < 300; trial++ {
		tr := r.Split()
		nt := 2 + tr.Intn(3) // 2..4 tables, 1..3 joins
		tbls := make([]*Table, nt)
		for i := range tbls {
			size := 1 + tr.Intn(40)
			if i > 0 {
				size = 1 + tr.Intn(20)
			}
			tbls[i] = randomTable(tr.Split(), fmt.Sprintf("t%d", i), size)
		}
		q := From(tbls[0])
		if tr.Intn(2) == 0 {
			q = q.WhereExpr(combineExpr(tr.Split(), tbls[0].Schema))
		}
		for i := 1; i < nt; i++ {
			q = q.Join(tbls[i], joinCols[tr.Intn(len(joinCols))], joinCols[tr.Intn(len(joinCols))])
			if tr.Intn(2) == 0 {
				q = q.WhereExpr(combineExpr(tr.Split(), q.schema))
			}
		}
		// Occasionally an opaque filter, which truncates the planned
		// region mid-chain.
		if tr.Intn(4) == 0 {
			q = q.WhereFloat(q.schema[1].Name, func(v float64) bool { return v > -1 })
		}
		switch tr.Intn(4) {
		case 0:
			q = q.Distinct()
		case 1:
			q = q.OrderBy(q.schema[tr.Intn(len(q.schema))].Name, tr.Intn(2) == 0)
		case 2:
			q = q.Limit(tr.Intn(10))
		}

		off, errOff := q.WithPlanner(false).Run()
		on, errOn := q.WithPlanner(true).Run()
		if (errOff == nil) != (errOn == nil) {
			t.Fatalf("trial %d: error mismatch off=%v on=%v", trial, errOff, errOn)
		}
		if errOff != nil {
			continue
		}
		requireSameTable(t, fmt.Sprintf("trial %d", trial), off, on)
	}
}

// TestPlannerSelfJoinEquivalence exercises self-joins, where alias
// deduplication and rid bookkeeping are easiest to get wrong.
func TestPlannerSelfJoinEquivalence(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 40; trial++ {
		tbl := randomTable(r.Split(), "s", 1+r.Intn(30))
		q := From(tbl).
			Join(tbl, "tag", "tag").
			Join(tbl, "s.id", "id").
			WhereExpr(plan.Cmp{Op: ">", Col: "s.x", Val: plan.FloatLit(-1)})
		off, errOff := q.WithPlanner(false).Run()
		on, errOn := q.WithPlanner(true).Run()
		if (errOff == nil) != (errOn == nil) {
			t.Fatalf("trial %d: error mismatch off=%v on=%v", trial, errOff, errOn)
		}
		if errOff != nil {
			continue
		}
		requireSameTable(t, fmt.Sprintf("self-join trial %d", trial), off, on)
	}
}

// --- prepared statements and metrics ---

// TestPreparedCachesJoinOrder checks that a Prepared statement plans
// once: the first execution misses the choice cache, the second hits,
// and both return the same bytes as a fresh Database.Query.
func TestPreparedCachesJoinOrder(t *testing.T) {
	db := starDB(t)
	p, err := Prepare(starSQL)
	if err != nil {
		t.Fatal(err)
	}
	hits := obs.Default().Counter(MetricPlanCacheHits)
	misses := obs.Default().Counter(MetricPlanCacheMisses)
	h0, m0 := hits.Value(), misses.Value()

	first, err := p.Exec(db)
	if err != nil {
		t.Fatal(err)
	}
	if misses.Value() != m0+1 {
		t.Fatalf("first Exec: misses %d→%d, want +1", m0, misses.Value())
	}
	second, err := p.Exec(db)
	if err != nil {
		t.Fatal(err)
	}
	if hits.Value() != h0+1 {
		t.Fatalf("second Exec: hits %d→%d, want +1", h0, hits.Value())
	}
	requireSameTable(t, "prepared re-exec", first, second)

	direct, err := db.Query(starSQL)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTable(t, "prepared vs direct", direct, first)
}

func TestPrepareRejectsNonSelect(t *testing.T) {
	if _, err := Prepare("INSERT INTO x VALUES (1)"); err == nil {
		t.Fatal("Prepare accepted INSERT")
	}
}

// TestPlannerMetrics checks the engine.plan.* counters fire: a planned
// reordered query advances planned/reordered/pushdown/canon_sorts, and
// a planner-off run advances direct.
func TestPlannerMetrics(t *testing.T) {
	db := starDB(t)
	reg := obs.Default()
	planned := reg.Counter(MetricPlanPlanned)
	direct := reg.Counter(MetricPlanDirect)
	reordered := reg.Counter(MetricPlanReordered)
	pushdown := reg.Counter(MetricPlanPushdown)
	sorts := reg.Counter(MetricPlanCanonSorts)

	p0, r0, pd0, s0 := planned.Value(), reordered.Value(), pushdown.Value(), sorts.Value()
	if _, err := db.Query(starSQL); err != nil {
		t.Fatal(err)
	}
	if planned.Value() != p0+1 {
		t.Fatalf("planned %d→%d, want +1", p0, planned.Value())
	}
	if reordered.Value() != r0+1 {
		t.Fatalf("reordered %d→%d, want +1", r0, reordered.Value())
	}
	if pushdown.Value() <= pd0 {
		t.Fatalf("pushdown did not advance: %d→%d", pd0, pushdown.Value())
	}
	if sorts.Value() != s0+1 {
		t.Fatalf("canon_sorts %d→%d, want +1", s0, sorts.Value())
	}

	d0 := direct.Value()
	prev := SetPlannerDefault(false)
	_, err := db.Query(starSQL)
	SetPlannerDefault(prev)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Value() != d0+1 {
		t.Fatalf("direct %d→%d, want +1", d0, direct.Value())
	}
}

// TestSetPlannerDefault pins the toggle contract: it returns the
// previous value and WithPlanner overrides it in both directions.
func TestSetPlannerDefault(t *testing.T) {
	orig := SetPlannerDefault(true)
	defer SetPlannerDefault(orig)
	if prev := SetPlannerDefault(false); !prev {
		t.Fatal("SetPlannerDefault(false) should report previous=true")
	}
	if prev := SetPlannerDefault(true); prev {
		t.Fatal("SetPlannerDefault(true) should report previous=false")
	}
	db := starDB(t)
	fact, _ := db.Get("fact")
	med, _ := db.Get("med")
	base := From(fact).Join(med, "gid", "gid")
	if !base.WithPlanner(true).plannerOn() {
		t.Fatal("WithPlanner(true) not forcing on")
	}
	if base.WithPlanner(false).plannerOn() {
		t.Fatal("WithPlanner(false) not forcing off")
	}
}
