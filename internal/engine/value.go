// Package engine is an in-memory relational engine: typed columns,
// tables, and a relational-algebra / SQL-ish query API. It is the
// database substrate on which the Monte Carlo Database (internal/mcdb),
// SimSQL (internal/simsql), and Indemics (internal/indemics) layers are
// built, standing in for the parallel RDBMS and Hadoop back ends used by
// the systems surveyed in the paper.
//
// Values are a tagged union rather than interface{} so that hot query
// loops avoid boxing and type switches stay local to this file.
package engine

import (
	"fmt"
	"math"
	"strconv"
)

// Type enumerates the column types supported by the engine.
type Type uint8

// Column types.
const (
	TypeInt Type = iota
	TypeFloat
	TypeString
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Value is a tagged-union scalar. The zero Value is the integer 0.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
	b   bool
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{typ: TypeInt, i: v} }

// Float returns a float Value.
func Float(v float64) Value { return Value{typ: TypeFloat, f: v} }

// String returns a string Value.
func Str(v string) Value { return Value{typ: TypeString, s: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value { return Value{typ: TypeBool, b: v} }

// Type returns the value's type tag.
func (v Value) Type() Type { return v.typ }

// AsInt returns the integer payload; float values are truncated. It
// panics for string and bool values (programmer error — schemas are
// checked on insert).
func (v Value) AsInt() int64 {
	switch v.typ {
	case TypeInt:
		return v.i
	case TypeFloat:
		return int64(v.f)
	}
	panic(fmt.Sprintf("engine: AsInt on %s value", v.typ))
}

// AsFloat returns the numeric payload widened to float64. It panics for
// string and bool values.
func (v Value) AsFloat() float64 {
	switch v.typ {
	case TypeInt:
		return float64(v.i)
	case TypeFloat:
		return v.f
	}
	panic(fmt.Sprintf("engine: AsFloat on %s value", v.typ))
}

// AsString returns the string payload. It panics for other types.
func (v Value) AsString() string {
	if v.typ != TypeString {
		panic(fmt.Sprintf("engine: AsString on %s value", v.typ))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics for other types.
func (v Value) AsBool() bool {
	if v.typ != TypeBool {
		panic(fmt.Sprintf("engine: AsBool on %s value", v.typ))
	}
	return v.b
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.typ == TypeInt || v.typ == TypeFloat }

// exactInt64 bounds for float64 range checks: 2^63 is exactly
// representable as a float64, so f < maxInt64AsFloat excludes every
// float at or above 2^63 and f >= minInt64AsFloat admits exactly
// math.MinInt64 (which is a power of two and thus exact).
const (
	maxInt64AsFloat = 9223372036854775808.0  // 2^63
	minInt64AsFloat = -9223372036854775808.0 // -2^63
)

// floatRepresentable reports whether the int64 round-trips exactly
// through float64 — true for all |i| ≤ 2^53 and for larger ints whose
// low bits happen to vanish.
func floatRepresentable(i int64) bool {
	f := float64(i)
	return f >= minInt64AsFloat && f < maxInt64AsFloat && int64(f) == i
}

// floatEqualsInt reports f == i exactly, without rounding i through
// float64 (float64(i) == f would wrongly equate 2^53+1 with 2^53.0).
func floatEqualsInt(f float64, i int64) bool {
	return f == math.Trunc(f) && f >= minInt64AsFloat && f < maxInt64AsFloat && int64(f) == i
}

// intLessFloat reports i < f exactly. NaN compares as neither less nor
// greater, matching float64 semantics.
func intLessFloat(i int64, f float64) bool {
	if math.IsNaN(f) {
		return false
	}
	if f >= maxInt64AsFloat {
		return true
	}
	if f < minInt64AsFloat {
		return false
	}
	g := math.Floor(f) // in [-2^63, 2^63), safe to convert
	gi := int64(g)
	if i != gi {
		return i < gi
	}
	return f != g // equal integer parts: i < f iff f has a fraction
}

// floatLessInt reports f < i exactly: true iff floor(f) < i.
func floatLessInt(f float64, i int64) bool {
	if math.IsNaN(f) {
		return false
	}
	if f >= maxInt64AsFloat {
		return false
	}
	if f < minInt64AsFloat {
		return true
	}
	return int64(math.Floor(f)) < i
}

// Equal reports value equality. Ints and floats compare numerically
// across the two numeric types, exactly: an int/int pair compares as
// int64 (no precision loss above 2^53), and a mixed int/float pair is
// equal only when the float is the exact integer — Int(2^53+1) is not
// equal to Float(2^53) even though both round to the same float64.
func (v Value) Equal(o Value) bool {
	if v.typ == TypeInt && o.typ == TypeInt {
		return v.i == o.i
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.typ == TypeInt {
			return floatEqualsInt(o.f, v.i)
		}
		if o.typ == TypeInt {
			return floatEqualsInt(v.f, o.i)
		}
		return v.f == o.f
	}
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case TypeString:
		return v.s == o.s
	case TypeBool:
		return v.b == o.b
	}
	return false
}

// Less defines a total order within comparable types: numerics compare
// numerically and exactly (int/int as int64, mixed int/float without
// rounding the int through float64), strings lexically, bools
// false < true. Cross-type comparisons between non-numeric types order
// by type tag.
func (v Value) Less(o Value) bool {
	if v.typ == TypeInt && o.typ == TypeInt {
		return v.i < o.i
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.typ == TypeInt {
			return intLessFloat(v.i, o.f)
		}
		if o.typ == TypeInt {
			return floatLessInt(v.f, o.i)
		}
		return v.f < o.f
	}
	if v.typ != o.typ {
		return v.typ < o.typ
	}
	switch v.typ {
	case TypeString:
		return v.s < o.s
	case TypeBool:
		return !v.b && o.b
	}
	return false
}

// Key returns a string usable as a hash key for joins and grouping:
// Key equality coincides with Equal. An int that is exactly
// representable as a float64 shares its key with the equal float
// (cross-type numeric joins work for all |i| ≤ 2^53 and exact larger
// ints); an unrepresentable int gets a FormatInt key of its own, so
// distinct int64 keys above 2^53 no longer collide.
func (v Value) Key() string {
	switch v.typ {
	case TypeInt:
		if floatRepresentable(v.i) {
			return "n" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
		}
		return "i" + strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return "s" + v.s
	case TypeBool:
		if v.b {
			return "b1"
		}
		return "b0"
	}
	return "?"
}

// String renders the value for display.
func (v Value) String() string {
	switch v.typ {
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}
