package engine

// Grace-style spill-to-disk for hash join and group-by. When a memory
// budget is set and the estimated hash-table footprint of an operator
// exceeds it, the operator partitions its inputs by the fnv64a hash of
// the binary key encoding (the same injective encoding the in-memory
// hash tables key on), writes the partitions to a temporary directory,
// and processes them one at a time — so peak memory is roughly
// 1/P of the unbounded build. Output is byte-identical to the
// in-memory path:
//
//   - Join: the in-memory path emits probe rows in logical order, and
//     within one probe row its build matches in build-scan order. Each
//     key hashes to exactly one partition, so a probe row's matches all
//     surface in that partition, in build-file order = build-scan
//     order. A counting-placement merge (per-probe-row offsets from a
//     prefix sum over match counts) then restores global probe order
//     exactly.
//   - Group-by: a group's rows land wholly in one partition, in scan
//     order, so per-group float accumulation is bit-identical; groups
//     are globally ordered by the logical index of their first
//     appearance, reproducing first-appearance order.
//
// Spill I/O failures are not fatal: the operator falls back to the
// in-memory path (counted by colstore.spill_fallbacks), trading the
// budget for completion.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Process-wide default spill policy, applied by queries that do not set
// an explicit budget. Zero budget means "never spill".
var (
	spillMu      sync.Mutex
	spillDefault int64  // guarded by spillMu
	spillDefDir  string // guarded by spillMu
)

// SetSpillDefault sets the process-wide memory budget (bytes of
// estimated hash-table footprint; 0 disables spilling) and spill
// directory ("" = the OS temp dir) used by queries that do not call
// WithMemoryBudget/WithSpillDir explicitly.
func SetSpillDefault(budget int64, dir string) {
	spillMu.Lock()
	defer spillMu.Unlock()
	spillDefault, spillDefDir = budget, dir
}

// SpillDefaults returns the process-wide spill budget and directory.
func SpillDefaults() (int64, string) {
	spillMu.Lock()
	defer spillMu.Unlock()
	return spillDefault, spillDefDir
}

// hashEntryBytes is the modeled per-entry overhead of a Go map bucket
// plus the []int32 match list header — deliberately round; the budget
// is a planning estimate, not an accounting guarantee.
const hashEntryBytes = 48

// estHashBytes estimates the hash-table footprint of building on b's
// key columns: per-row bucket overhead, eight bytes per fixed-width
// key, and the summed byte length of string keys.
func estHashBytes(b *ColumnBlock, keyIdx []int) int64 {
	n := int64(b.Len())
	est := n * hashEntryBytes
	for _, j := range keyIdx {
		if b.Schema[j].Type == TypeString {
			strs := b.cols[j].strs
			for i, ln := 0, b.Len(); i < ln; i++ {
				est += int64(len(strs[b.phys(i)]))
			}
			continue
		}
		est += n * 8
	}
	return est
}

// spillTempDir creates a fresh scratch directory for one spill run,
// creating the configured parent first (a spill dir named before any
// spill happens need not exist yet).
func spillTempDir(dir string) (string, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	return os.MkdirTemp(dir, "mdspill-*")
}

// spillPartitionCount picks a power-of-two partition count so each
// partition's estimated build fits the budget, clamped to [2, 128]
// (beyond 128 the per-partition file overhead dominates any win).
func spillPartitionCount(est, budget int64) int {
	p := 2
	for int64(p) < 128 && est/int64(p) > budget {
		p <<= 1
	}
	return p
}

// fnv64aBytes is the FNV-1a hash of b. Inlined (vs hash/fnv) to avoid
// a per-row allocation in the partitioning loops.
func fnv64aBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// joinPairs computes hash equi-join match pairs like equiJoinIdx, but
// spills to disk when budget > 0 and the build side's estimated hash
// footprint exceeds it. dir == "" spills to the OS temp dir.
func joinPairs(l, r *ColumnBlock, li, ri int, buildLeft bool, sc *Scratch, budget int64, dir string) (lidx, ridx []int32) {
	if budget > 0 {
		build, bi := r, ri
		if buildLeft {
			build, bi = l, li
		}
		if estHashBytes(build, []int{bi}) > budget {
			lidx, ridx, err := spillJoinIdx(l, r, li, ri, buildLeft, sc, budget, dir)
			if err == nil {
				return lidx, ridx
			}
			spillFallbacks.Add(1)
		}
	}
	return equiJoinIdx(l, r, li, ri, buildLeft, sc)
}

// spillJoinIdx is the Grace-partitioned counterpart of equiJoinIdx.
func spillJoinIdx(l, r *ColumnBlock, li, ri int, buildLeft bool, sc *Scratch, budget int64, dir string) (lidx, ridx []int32, err error) {
	build, probe := r, l
	bi, pi := ri, li
	swapped := false
	if buildLeft {
		build, probe = l, r
		bi, pi = li, ri
		swapped = true
	}
	lidx, ridx = sc.idxBuf(0), sc.idxBuf(1)
	if colKeyKind(l.Schema[li].Type) != colKeyKind(r.Schema[ri].Type) {
		// Mismatched key kinds never join (same gate as equiJoinIdx).
		return lidx, ridx, nil
	}

	tmp, err := spillTempDir(dir)
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(tmp)

	P := spillPartitionCount(estHashBytes(build, []int{bi}), budget)
	bparts, err := newSpillParts(tmp, "build", P)
	if err != nil {
		return nil, nil, err
	}
	defer bparts.close()
	pparts, err := newSpillParts(tmp, "probe", P)
	if err != nil {
		return nil, nil, err
	}
	defer pparts.close()

	// Partition the build side: records of (phys, key).
	key := sc.keyBuf()
	for i, n := 0, build.Len(); i < n; i++ {
		key = build.appendKeyAt(key[:0], i, bi)
		p := fnv64aBytes(key) & uint64(P-1)
		if err := bparts.record(p, uint64(build.phys(i)), key); err != nil {
			sc.putKey(key)
			return nil, nil, err
		}
	}
	// Partition the probe side: records of (logical, phys, key). The
	// logical index drives the order-restoring merge.
	for i, n := 0, probe.Len(); i < n; i++ {
		key = probe.appendKeyAt(key[:0], i, pi)
		p := fnv64aBytes(key) & uint64(P-1)
		if err := pparts.record2(p, uint64(i), uint64(probe.phys(i)), key); err != nil {
			sc.putKey(key)
			return nil, nil, err
		}
	}
	sc.putKey(key)
	if err := bparts.flush(); err != nil {
		return nil, nil, err
	}
	if err := pparts.flush(); err != nil {
		return nil, nil, err
	}
	spillPartitions.Add(int64(P))
	spillBytes.Add(bparts.bytes + pparts.bytes)

	// Process partitions in index order, collecting match pairs and
	// per-probe-row match counts.
	type pair struct{ pl, pp, bp int32 }
	pairs := make([][]pair, P)
	counts := make([]int32, probe.Len())
	var keyBuf []byte
	for p := 0; p < P; p++ {
		br, err := bparts.reader(p)
		if err != nil {
			return nil, nil, err
		}
		ht := make(map[string][]int32)
		for {
			phys, ok, err := readUvarintEOF(br)
			if !ok {
				if err != nil {
					return nil, nil, err
				}
				break
			}
			keyBuf, err = readKey(br, keyBuf)
			if err != nil {
				return nil, nil, err
			}
			ht[string(keyBuf)] = append(ht[string(keyBuf)], int32(phys))
		}
		pr, err := pparts.reader(p)
		if err != nil {
			return nil, nil, err
		}
		for {
			logical, ok, err := readUvarintEOF(pr)
			if !ok {
				if err != nil {
					return nil, nil, err
				}
				break
			}
			phys, err := binary.ReadUvarint(pr)
			if err != nil {
				return nil, nil, err
			}
			keyBuf, err = readKey(pr, keyBuf)
			if err != nil {
				return nil, nil, err
			}
			matches := ht[string(keyBuf)]
			if len(matches) == 0 {
				continue
			}
			counts[logical] += int32(len(matches))
			for _, bp := range matches {
				pairs[p] = append(pairs[p], pair{pl: int32(logical), pp: int32(phys), bp: bp})
			}
		}
	}

	// Counting placement: offsets[i] is where probe row i's first match
	// belongs globally; partitions replay in index order, and within a
	// partition pairs are already in (probe order, build order).
	total := 0
	offsets := make([]int32, len(counts))
	for i, c := range counts {
		offsets[i] = int32(total)
		total += int(c)
	}
	lidx, ridx = growIdx(lidx, total), growIdx(ridx, total)
	for p := 0; p < P; p++ {
		for _, pr := range pairs[p] {
			k := offsets[pr.pl]
			offsets[pr.pl]++
			if swapped {
				lidx[k], ridx[k] = pr.bp, pr.pp
			} else {
				lidx[k], ridx[k] = pr.pp, pr.bp
			}
		}
	}
	return lidx, ridx, nil
}

// spillGroupBy is the Grace-partitioned counterpart of the in-memory
// group-by: logical rows are partitioned by composite-key hash, each
// partition is grouped and aggregated as a sub-block (bounding the
// group hash table), and the partial groups — complete groups, since a
// key maps to exactly one partition — merge in global first-appearance
// order. Keyless group-bys never take this path (one global group
// needs no hash table).
func (b *ColumnBlock) spillGroupBy(keys []string, aggs []Aggregate, keyIdx, aggIdx []int, sc *Scratch, budget int64, dir string) (*Table, error) {
	tmp, err := spillTempDir(dir)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	P := spillPartitionCount(estHashBytes(b, keyIdx), budget)
	parts, err := newSpillParts(tmp, "group", P)
	if err != nil {
		return nil, err
	}
	defer parts.close()

	key := sc.keyBuf()
	n := b.Len()
	for i := 0; i < n; i++ {
		key = key[:0]
		for _, j := range keyIdx {
			key = b.appendKeyAt(key, i, j)
		}
		p := fnv64aBytes(key) & uint64(P-1)
		if err := parts.record(p, uint64(i), nil); err != nil {
			sc.putKey(key)
			return nil, err
		}
	}
	sc.putKey(key)
	if err := parts.flush(); err != nil {
		return nil, err
	}
	spillPartitions.Add(int64(P))
	spillBytes.Add(parts.bytes)

	type partialGroup struct {
		first int32 // global logical index of the group's first row
		row   Row
	}
	var groups []partialGroup
	for p := 0; p < P; p++ {
		logical, err := parts.readIndexes(p)
		if err != nil {
			return nil, err
		}
		if len(logical) == 0 {
			continue
		}
		physSel := make([]int32, len(logical))
		for k, li := range logical {
			physSel[k] = int32(b.phys(int(li)))
		}
		sub := b.withSel(physSel)
		gids, firstP := sub.groupIDs(keyIdx, sc)
		nG := len(firstP)
		rows := sub.aggregateGroups(keyIdx, aggIdx, aggs, gids, firstP, nG, false)
		// Group ids are assigned in first-appearance order, so the first
		// occurrence of id g in gids is group g's first row; partition
		// scan order preserves global logical order.
		firstGlobal := make([]int32, nG)
		next := 0
		for k, g := range gids {
			if int(g) == next {
				firstGlobal[next] = logical[k]
				next++
				if next == nG {
					break
				}
			}
		}
		for g := 0; g < nG; g++ {
			groups = append(groups, partialGroup{first: firstGlobal[g], row: rows[g]})
		}
	}
	sort.Slice(groups, func(x, y int) bool { return groups[x].first < groups[y].first })

	out, err := NewTable(b.Name+"_group", groupSchema(b, keys, keyIdx, aggs, aggIdx))
	if err != nil {
		return nil, err
	}
	out.Rows = make([]Row, len(groups))
	for i, g := range groups {
		out.Rows[i] = g.row
	}
	return out, nil
}

// growIdx resizes a scratch index buffer to length n, reusing capacity.
func growIdx(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// spillParts manages one side's P partition files.
type spillParts struct {
	files []*os.File
	ws    []*bufio.Writer
	bytes int64
}

func newSpillParts(dir, name string, p int) (*spillParts, error) {
	sp := &spillParts{files: make([]*os.File, 0, p), ws: make([]*bufio.Writer, 0, p)}
	for i := 0; i < p; i++ {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-%03d.part", name, i)))
		if err != nil {
			sp.close()
			return nil, err
		}
		sp.files = append(sp.files, f)
		sp.ws = append(sp.ws, bufio.NewWriter(f))
	}
	return sp, nil
}

// record writes (a, key) to partition p; a nil key writes just a.
func (sp *spillParts) record(p, a uint64, key []byte) error {
	w := sp.ws[p]
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], a)
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	sp.bytes += int64(n)
	if key == nil {
		return nil
	}
	return sp.writeKey(w, key)
}

// record2 writes (a, b, key) to partition p.
func (sp *spillParts) record2(p, a, b uint64, key []byte) error {
	w := sp.ws[p]
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], a)
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	m := binary.PutUvarint(buf[:], b)
	if _, err := w.Write(buf[:m]); err != nil {
		return err
	}
	sp.bytes += int64(n + m)
	return sp.writeKey(w, key)
}

func (sp *spillParts) writeKey(w *bufio.Writer, key []byte) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(key)))
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	if _, err := w.Write(key); err != nil {
		return err
	}
	sp.bytes += int64(n) + int64(len(key))
	return nil
}

func (sp *spillParts) flush() error {
	for _, w := range sp.ws {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// reader rewinds partition p's file and returns a buffered reader over
// it. Writers must have been flushed.
func (sp *spillParts) reader(p int) (*bufio.Reader, error) {
	if _, err := sp.files[p].Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return bufio.NewReader(sp.files[p]), nil
}

// readIndexes reads partition p as a plain uvarint sequence (the
// group-by spill layout).
func (sp *spillParts) readIndexes(p int) ([]int32, error) {
	r, err := sp.reader(p)
	if err != nil {
		return nil, err
	}
	var out []int32
	for {
		v, ok, err := readUvarintEOF(r)
		if !ok {
			return out, err
		}
		out = append(out, int32(v))
	}
}

func (sp *spillParts) close() {
	for _, f := range sp.files {
		f.Close() //lint:allow errdrop scratch files about to be removed; reads already completed or failed
	}
}

// readUvarintEOF reads one uvarint, reporting ok=false at a clean EOF
// (err nil) or on a real error (err set).
func readUvarintEOF(r *bufio.Reader) (uint64, bool, error) {
	v, err := binary.ReadUvarint(r)
	if err == io.EOF {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// readKey reads a uvarint-length-prefixed key into buf (reused).
func readKey(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return buf, err
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, err
	}
	return buf, nil
}
