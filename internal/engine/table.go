package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"modeldata/internal/prov"
)

// Common engine errors.
var (
	ErrNoColumn   = errors.New("engine: no such column")
	ErrNoTable    = errors.New("engine: no such table")
	ErrTypeClash  = errors.New("engine: value type does not match column type")
	ErrArity      = errors.New("engine: row arity does not match schema")
	ErrDupeColumn = errors.New("engine: duplicate column name")
	ErrSchema     = errors.New("engine: incompatible schemas")
)

// ErrNotNumeric reports an access that required a numeric column but
// found another value type. It wraps ErrTypeClash, so existing
// errors.Is(err, ErrTypeClash) checks keep matching, while callers that
// care about the narrower reason class (the columnar-fallback log, for
// one) can distinguish it with errors.Is(err, ErrNotNumeric).
var ErrNotNumeric = fmt.Errorf("%w: column is not numeric", ErrTypeClash)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the index of the named column, or ErrNoColumn.
func (s Schema) ColIndex(name string) (int, error) {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNoColumn, name)
}

// Validate checks that column names are unique (case-insensitively).
func (s Schema) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		k := strings.ToLower(c.Name)
		if seen[k] {
			return fmt.Errorf("%w: %q", ErrDupeColumn, c.Name)
		}
		seen[k] = true
	}
	return nil
}

// Equal reports whether two schemas have identical column names (case-
// insensitive) and types in order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if !strings.EqualFold(s[i].Name, o[i].Name) || s[i].Type != o[i].Type {
			return false
		}
	}
	return true
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Row is one tuple.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory relation: a schema plus rows.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Row

	// lineage, when non-nil, holds the why-provenance recorded by a
	// WithProvenance query: one interned leaf set per row. It is
	// query-result metadata, not part of the relation — operators
	// ignore it, and only Lineage reads it.
	lineage *tableLineage
}

// tableLineage is the provenance payload of a query result.
type tableLineage struct {
	arena *prov.Arena
	sets  []prov.Set
}

// Lineage returns the why-provenance of the given result row: the
// source-table rows that contributed to it, sorted by table then row
// index. It reports ok=false when the table carries no provenance
// (the query did not run WithProvenance) or the row is out of range.
func (t *Table) Lineage(row int) ([]prov.Leaf, bool) {
	if t.lineage == nil || row < 0 || row >= len(t.lineage.sets) {
		return nil, false
	}
	return t.lineage.arena.Leaves(t.lineage.sets[row]), true
}

// HasLineage reports whether the table carries per-row provenance.
func (t *Table) HasLineage() bool { return t.lineage != nil }

// NewTable creates an empty table with the given name and schema. It
// returns an error if the schema has duplicate column names.
func NewTable(name string, schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &Table{Name: name, Schema: schema.Clone()}, nil
}

// MustNewTable is NewTable that panics on error, for static schemas in
// tests and examples.
func MustNewTable(name string, schema Schema) *Table {
	t, err := NewTable(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// checkRow verifies arity and column types.
func (t *Table) checkRow(r Row) error {
	if len(r) != len(t.Schema) {
		return fmt.Errorf("%w: table %q got %d values, want %d", ErrArity, t.Name, len(r), len(t.Schema))
	}
	for i, v := range r {
		want := t.Schema[i].Type
		if v.Type() == want {
			continue
		}
		// Allow int→float widening at insert time.
		if want == TypeFloat && v.Type() == TypeInt {
			r[i] = Float(v.AsFloat())
			continue
		}
		return fmt.Errorf("%w: table %q column %q: got %s, want %s",
			ErrTypeClash, t.Name, t.Schema[i].Name, v.Type(), want)
	}
	return nil
}

// Insert appends a row after validating it against the schema.
func (t *Table) Insert(r Row) error {
	if err := t.checkRow(r); err != nil {
		return err
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// MustInsert inserts and panics on error, for tests and examples.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// InsertAll inserts every row, stopping at the first error.
func (t *Table) InsertAll(rows []Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.Rows) }

// ColIndex returns the index of the named column.
func (t *Table) ColIndex(name string) (int, error) { return t.Schema.ColIndex(name) }

// Column extracts the named column as a value slice.
func (t *Table) Column(name string) ([]Value, error) {
	idx, err := t.ColIndex(name)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[idx]
	}
	return out, nil
}

// FloatColumn extracts a numeric column as float64s.
func (t *Table) FloatColumn(name string) ([]float64, error) {
	idx, err := t.ColIndex(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		if !r[idx].IsNumeric() {
			return nil, fmt.Errorf("%w: column %q row %d is %s", ErrNotNumeric, name, i, r[idx].Type())
		}
		out[i] = r[idx].AsFloat()
	}
	return out, nil
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	rows := make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = r.Clone()
	}
	return &Table{Name: t.Name, Schema: t.Schema.Clone(), Rows: rows}
}

// String renders the table as an aligned text grid (truncated for large
// tables), convenient in examples and error messages.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d rows)\n", t.Name, len(t.Rows))
	for i, c := range t.Schema {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Type)
	}
	b.WriteByte('\n')
	const maxRows = 20
	for i, r := range t.Rows {
		if i == maxRows {
			fmt.Fprintf(&b, "... (%d more)\n", len(t.Rows)-maxRows)
			break
		}
		for j, v := range r {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Database is a named collection of tables, plus optionally registered
// Storage backends (on-disk column stores and the like) that SQL FROM
// clauses resolve against when no in-memory table claims the name.
type Database struct {
	tables map[string]*Table
	stores map[string]Storage
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Put registers (or replaces) a table under its own name.
func (db *Database) Put(t *Table) {
	db.tables[strings.ToLower(t.Name)] = t
}

// Get returns the named table or ErrNoTable.
func (db *Database) Get(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Drop removes the named table; it is a no-op if absent.
func (db *Database) Drop(name string) {
	delete(db.tables, strings.ToLower(name))
}

// PutStorage registers (or replaces) a storage backend under its own
// name. SQL SELECTs resolve FROM names against in-memory tables first
// and storages second, so a table shadows a storage of the same name.
// Storage-backed relations are read-only: INSERT and JOIN right sides
// still require in-memory tables.
func (db *Database) PutStorage(st Storage) {
	if db.stores == nil {
		db.stores = make(map[string]Storage)
	}
	db.stores[strings.ToLower(st.StorageName())] = st
}

// Storage returns the storage backend registered under name.
func (db *Database) Storage(name string) (Storage, bool) {
	st, ok := db.stores[strings.ToLower(name)]
	return st, ok
}

// Names returns the table names in the database in sorted order, so
// catalog listings are stable run to run.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the database; this is how Monte Carlo layers
// materialize independent database instances. Tables are deep-copied
// (the clone may mutate them freely); storage backends are read-only
// and safe for concurrent scans, so the clone shares them — each
// clone gets its own registration map, but the backends themselves
// are the same objects.
func (db *Database) Clone() *Database {
	out := NewDatabase()
	for _, t := range db.tables {
		out.Put(t.Clone())
	}
	for _, st := range db.stores {
		out.PutStorage(st)
	}
	return out
}
