package engine

// Table statistics for the cost model, harvested from decoded
// ColumnBlocks: row counts, per-column NDV (exact for small scans,
// deterministic stride-sampled above ndvExactLimit rows), and numeric
// min/max. blockCatalog implements plan.Catalog; it is built per
// planning call and caches per-column results for the duration of that
// call. Everything here is deterministic — sampling uses a fixed
// stride, never a random source — per the repository's bit-identical
// replay rule.

import (
	"strings"

	"modeldata/internal/engine/plan"
)

const (
	// ndvExactLimit is the scan size up to which NDV is counted exactly.
	ndvExactLimit = 1 << 16
	// ndvSampleSize is the number of stride-sampled rows used above it.
	ndvSampleSize = 4096
)

type cachedStats struct {
	cs plan.ColStats
	ok bool
}

// blockCatalog supplies statistics over one region's scans. blocks may
// hold nils for scans that failed columnar decode; those report no
// column statistics and the cost model falls back to row counts.
type blockCatalog struct {
	tables []*Table
	blocks []*ColumnBlock
	cache  []map[string]cachedStats
}

func newBlockCatalog(tables []*Table, blocks []*ColumnBlock) *blockCatalog {
	return &blockCatalog{
		tables: tables,
		blocks: blocks,
		cache:  make([]map[string]cachedStats, len(tables)),
	}
}

// ScanRows returns the row count of the scan.
func (c *blockCatalog) ScanRows(scan int) int64 {
	if scan < 0 || scan >= len(c.tables) {
		return 0
	}
	return int64(c.tables[scan].Len())
}

// ColStats harvests (and caches) statistics for one column of a scan.
func (c *blockCatalog) ColStats(scan int, col string) (plan.ColStats, bool) {
	if scan < 0 || scan >= len(c.blocks) || c.blocks[scan] == nil {
		return plan.ColStats{}, false
	}
	key := strings.ToLower(col)
	if m := c.cache[scan]; m != nil {
		if e, ok := m[key]; ok {
			return e.cs, e.ok
		}
	}
	var e cachedStats
	if j, err := c.blocks[scan].ColIndex(col); err == nil {
		e = cachedStats{cs: harvestColStats(c.blocks[scan], j), ok: true}
	}
	if c.cache[scan] == nil {
		c.cache[scan] = make(map[string]cachedStats)
	}
	c.cache[scan][key] = e
	return e.cs, e.ok
}

// harvestColStats computes statistics for column j of a fully decoded
// block (sel must be nil, as planner scans always are).
func harvestColStats(b *ColumnBlock, j int) plan.ColStats {
	n := b.Len()
	switch b.Schema[j].Type {
	case TypeInt:
		ints := b.cols[j].ints[:n]
		var cs plan.ColStats
		cs.Numeric = true
		if n > 0 {
			mn, mx := ints[0], ints[0]
			for _, v := range ints {
				if v < mn {
					mn = v
				}
				if mx < v {
					mx = v
				}
			}
			cs.Min, cs.Max = float64(mn), float64(mx)
		}
		if n <= ndvExactLimit {
			seen := make(map[int64]struct{}, n)
			for _, v := range ints {
				seen[v] = struct{}{}
			}
			cs.NDV = int64(len(seen))
		} else {
			cs.NDV = sampledNDV(n, func(i int) uint64 { return uint64(ints[i]) })
		}
		return cs
	case TypeFloat:
		fs := b.cols[j].floats[:n]
		var cs plan.ColStats
		cs.Numeric = true
		if n > 0 {
			mn, mx := fs[0], fs[0]
			for _, v := range fs {
				if v < mn {
					mn = v
				}
				if mx < v {
					mx = v
				}
			}
			cs.Min, cs.Max = mn, mx
		}
		if n <= ndvExactLimit {
			seen := make(map[float64]struct{}, n)
			for _, v := range fs {
				seen[v] = struct{}{}
			}
			cs.NDV = int64(len(seen))
		} else {
			cs.NDV = sampledNDV(n, func(i int) uint64 { return numKeyBits(fs[i]) })
		}
		return cs
	case TypeString:
		strs := b.cols[j].strs[:n]
		var cs plan.ColStats
		if n <= ndvExactLimit {
			seen := make(map[string]struct{}, n)
			for _, v := range strs {
				seen[v] = struct{}{}
			}
			cs.NDV = int64(len(seen))
		} else {
			// Strings sample through a map of the sampled values.
			stride := n / ndvSampleSize
			if stride < 1 {
				stride = 1
			}
			seen := make(map[string]struct{}, ndvSampleSize)
			samples := 0
			for i := 0; i < n; i += stride {
				seen[strs[i]] = struct{}{}
				samples++
			}
			cs.NDV = scaleNDV(int64(len(seen)), int64(samples), int64(n))
		}
		return cs
	case TypeBool:
		bools := b.cols[j].bools[:n]
		var sawT, sawF bool
		for _, v := range bools {
			if v {
				sawT = true
			} else {
				sawF = true
			}
			if sawT && sawF {
				break
			}
		}
		var ndv int64
		if sawT {
			ndv++
		}
		if sawF {
			ndv++
		}
		return plan.ColStats{NDV: ndv}
	}
	return plan.ColStats{}
}

// sampledNDV estimates NDV from a fixed-stride sample of key codes.
func sampledNDV(n int, code func(i int) uint64) int64 {
	stride := n / ndvSampleSize
	if stride < 1 {
		stride = 1
	}
	seen := make(map[uint64]struct{}, ndvSampleSize)
	samples := 0
	for i := 0; i < n; i += stride {
		seen[code(i)] = struct{}{}
		samples++
	}
	return scaleNDV(int64(len(seen)), int64(samples), int64(n))
}

// scaleNDV scales a sampled distinct count d (out of s samples) to a
// population of n rows, clamped to [d, n]: linear scale-up, the naive
// but deterministic estimator — good enough to steer join order.
func scaleNDV(d, s, n int64) int64 {
	if s <= 0 || d <= 0 {
		return 1
	}
	est := d * n / s
	if est < d {
		est = d
	}
	if est > n {
		est = n
	}
	return est
}
