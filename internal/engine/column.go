package engine

// Columnar execution core. A ColumnBlock stores a relation as typed
// column vectors ([]int64 / []float64 / []string / []bool) plus an
// optional selection vector, the MonetDB/X100-style layout that lets
// operators run tight loops over primitive slices instead of walking
// []Row and re-boxing Value structs. This is the same amortization
// argument MCDB makes one level up — execute the plan once across Monte
// Carlo repetitions — applied across the tuples of a batch.
//
// Blocks convert at the boundary: FromTable decodes a row table into
// vectors, ToTable materializes vectors back into rows, and Table keeps
// its public row API so callers migrate incrementally. Conversion is
// strict — every value's dynamic type must match its column's schema
// type — and callers fall back to the row operators when it fails, so
// the two paths always produce byte-identical tables (enforced by the
// golden-equivalence suite in golden_test.go).

import (
	"errors"
	"fmt"
)

// ErrMixedColumn reports a column whose values' dynamic types do not
// all match the schema type, which the columnar layout cannot
// represent (callers fall back to the row path).
var ErrMixedColumn = errors.New("engine: column holds values not matching its schema type")

// colvec is the typed storage for one column; exactly one field is
// non-nil, selected by the column's schema type.
type colvec struct {
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
}

// ColumnBlock is a relation in columnar form: a schema, per-column
// typed vectors, and an optional selection vector mapping logical row
// order to physical vector positions. Operators that only filter or
// reorder (selections, distinct, sort, limit) share the underlying
// vectors and produce a new selection, deferring materialization until
// ToTable or a materializing operator (join, group-by).
type ColumnBlock struct {
	Name   string
	Schema Schema
	nrows  int // physical rows in each column vector
	// sel maps logical row i to physical row sel[i]; nil means the
	// identity over [0, nrows).
	sel  []int32
	cols []colvec
}

// Len returns the logical row count.
func (b *ColumnBlock) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.nrows
}

// phys maps a logical row index to its physical vector position.
func (b *ColumnBlock) phys(i int) int {
	if b.sel != nil {
		return int(b.sel[i])
	}
	return i
}

// ColIndex returns the index of the named column.
func (b *ColumnBlock) ColIndex(name string) (int, error) { return b.Schema.ColIndex(name) }

// valuePhys reconstructs the Value at a physical position of column j.
// It allocates nothing; the Value is a stack copy of the slot.
func (b *ColumnBlock) valuePhys(p, j int) Value {
	switch b.Schema[j].Type {
	case TypeInt:
		return Value{typ: TypeInt, i: b.cols[j].ints[p]}
	case TypeFloat:
		return Value{typ: TypeFloat, f: b.cols[j].floats[p]}
	case TypeString:
		return Value{typ: TypeString, s: b.cols[j].strs[p]}
	case TypeBool:
		return Value{typ: TypeBool, b: b.cols[j].bools[p]}
	}
	return Value{}
}

// value reconstructs the Value at logical row i, column j.
func (b *ColumnBlock) value(i, j int) Value { return b.valuePhys(b.phys(i), j) }

// decodeColumn extracts column j of rows into typed storage, strictly:
// every value must carry exactly the schema type.
func decodeColumn(rows []Row, j int, typ Type, colName string) (colvec, error) {
	var cv colvec
	switch typ {
	case TypeInt:
		cv.ints = make([]int64, len(rows))
	case TypeFloat:
		cv.floats = make([]float64, len(rows))
	case TypeString:
		cv.strs = make([]string, len(rows))
	case TypeBool:
		cv.bools = make([]bool, len(rows))
	}
	for i, r := range rows {
		v := r[j]
		if v.typ != typ {
			return colvec{}, fmt.Errorf("%w: column %q row %d is %s, schema says %s",
				ErrMixedColumn, colName, i, v.typ, typ)
		}
		switch typ {
		case TypeInt:
			cv.ints[i] = v.i
		case TypeFloat:
			cv.floats[i] = v.f
		case TypeString:
			cv.strs[i] = v.s
		case TypeBool:
			cv.bools[i] = v.b
		}
	}
	return cv, nil
}

// FromTable decodes a row table into a ColumnBlock. It fails with
// ErrMixedColumn when any value's dynamic type differs from its
// column's schema type (possible for hand-built tables or Extend
// callbacks returning a mismatched Value); callers then stay on the
// row path, keeping outputs byte-identical either way.
func FromTable(t *Table) (*ColumnBlock, error) {
	return FromRowsPartial(t.Name, t.Schema, t.Rows, nil)
}

// FromRowsPartial decodes rows into a ColumnBlock, leaving the columns
// listed in skip allocated but zero-filled (their row values are not
// read). The MCDB bundle layer uses this to decode the deterministic
// attributes of a tuple-bundle table once while the uncertain columns —
// zero placeholders in the Det rows — are patched in per Monte Carlo
// iteration.
func FromRowsPartial(name string, schema Schema, rows []Row, skip []int) (*ColumnBlock, error) {
	b := &ColumnBlock{
		Name:   name,
		Schema: schema.Clone(),
		nrows:  len(rows),
		cols:   make([]colvec, len(schema)),
	}
	skipped := make(map[int]bool, len(skip))
	for _, j := range skip {
		skipped[j] = true
	}
	for j, c := range schema {
		if skipped[j] {
			b.cols[j] = zeroColvec(c.Type, len(rows))
			continue
		}
		cv, err := decodeColumn(rows, j, c.Type, c.Name)
		if err != nil {
			return nil, err
		}
		b.cols[j] = cv
	}
	return b, nil
}

func zeroColvec(typ Type, n int) colvec {
	var cv colvec
	switch typ {
	case TypeInt:
		cv.ints = make([]int64, n)
	case TypeFloat:
		cv.floats = make([]float64, n)
	case TypeString:
		cv.strs = make([]string, n)
	case TypeBool:
		cv.bools = make([]bool, n)
	}
	return cv
}

// ToTable materializes the block as a row table. Rows are backed by one
// contiguous slab (disjoint sub-slices), halving allocation count
// versus per-row slices.
func (b *ColumnBlock) ToTable() *Table {
	n, nc := b.Len(), len(b.Schema)
	rows := make([]Row, n)
	slab := make([]Value, n*nc)
	for i := 0; i < n; i++ {
		p := b.phys(i)
		r := slab[i*nc : (i+1)*nc : (i+1)*nc]
		for j := 0; j < nc; j++ {
			r[j] = b.valuePhys(p, j)
		}
		rows[i] = r
	}
	return &Table{Name: b.Name, Schema: b.Schema.Clone(), Rows: rows}
}

// BlockOf assembles a ColumnBlock directly from typed column vectors,
// bypassing row decode entirely. vecs[j] must be a []int64, []float64,
// []string, or []bool matching schema[j].Type, and all vectors must
// share one length. This is the ingestion seam the on-disk column
// store uses: segments decode straight into vectors and never pay the
// []Row boxing FromTable exists to undo.
func BlockOf(name string, schema Schema, vecs []any) (*ColumnBlock, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(vecs) != len(schema) {
		return nil, fmt.Errorf("%w: got %d vectors, schema has %d columns", ErrArity, len(vecs), len(schema))
	}
	b := &ColumnBlock{
		Name:   name,
		Schema: schema.Clone(),
		cols:   make([]colvec, len(schema)),
	}
	n := -1
	for j, v := range vecs {
		var cv colvec
		var ln int
		switch s := v.(type) {
		case []int64:
			cv.ints, ln = s, len(s)
		case []float64:
			cv.floats, ln = s, len(s)
		case []string:
			cv.strs, ln = s, len(s)
		case []bool:
			cv.bools, ln = s, len(s)
		default:
			return nil, fmt.Errorf("%w: unsupported vector type %T", ErrTypeClash, v)
		}
		if !typedSlotMatches(schema[j].Type, cv) {
			return nil, fmt.Errorf("%w: column %q is %s", ErrTypeClash, schema[j].Name, schema[j].Type)
		}
		if n >= 0 && ln != n {
			return nil, fmt.Errorf("%w: column %q has %d rows, column %q has %d",
				ErrArity, schema[j].Name, ln, schema[0].Name, n)
		}
		n = ln
		b.cols[j] = cv
	}
	if n < 0 {
		n = 0
	}
	b.nrows = n
	return b, nil
}

// Dense returns a block whose selection vector is nil: b itself when
// already dense, otherwise a copy with every column gathered through
// the selection. Vec and the segment writer need physically contiguous
// vectors.
func (b *ColumnBlock) Dense() *ColumnBlock {
	if b.sel == nil {
		return b
	}
	nb := &ColumnBlock{
		Name:   b.Name,
		Schema: b.Schema.Clone(),
		nrows:  len(b.sel),
		cols:   make([]colvec, len(b.cols)),
	}
	for j := range b.cols {
		nb.cols[j] = gather(b.cols[j], b.Schema[j].Type, b.sel)
	}
	return nb
}

// Vec returns column j's typed vector ([]int64, []float64, []string,
// or []bool), sliced to the logical row count. It refuses blocks with
// a selection vector — call Dense first — because handing out the raw
// physical vector there would expose rows the selection filtered out.
// The returned slice aliases block storage; callers must not mutate it.
func (b *ColumnBlock) Vec(j int) (any, error) {
	if j < 0 || j >= len(b.Schema) {
		return nil, fmt.Errorf("%w: column %d of %d", ErrNoColumn, j, len(b.Schema))
	}
	if b.sel != nil {
		return nil, fmt.Errorf("%w: Vec on a block with a selection vector (call Dense first)", ErrSchema)
	}
	cv := b.cols[j]
	switch b.Schema[j].Type {
	case TypeInt:
		return cv.ints[:b.nrows], nil
	case TypeFloat:
		return cv.floats[:b.nrows], nil
	case TypeString:
		return cv.strs[:b.nrows], nil
	case TypeBool:
		return cv.bools[:b.nrows], nil
	}
	return nil, fmt.Errorf("%w: column %q has unknown type", ErrTypeClash, b.Schema[j].Name)
}

// WithColumn returns a shallow copy of the block with column j's
// vector replaced. vals must be a []int64, []float64, []string, or
// []bool matching the column's schema type and physical length; the
// other columns are shared. This is the patch primitive behind the
// tuple-bundle realization loop: decode the deterministic columns once,
// swap in each iteration's uncertain vectors.
func (b *ColumnBlock) WithColumn(j int, vals any) (*ColumnBlock, error) {
	if j < 0 || j >= len(b.Schema) {
		return nil, fmt.Errorf("%w: column %d of %d", ErrNoColumn, j, len(b.Schema))
	}
	var cv colvec
	var n int
	switch s := vals.(type) {
	case []int64:
		cv.ints, n = s, len(s)
	case []float64:
		cv.floats, n = s, len(s)
	case []string:
		cv.strs, n = s, len(s)
	case []bool:
		cv.bools, n = s, len(s)
	default:
		return nil, fmt.Errorf("%w: unsupported vector type %T", ErrTypeClash, vals)
	}
	if !typedSlotMatches(b.Schema[j].Type, cv) {
		return nil, fmt.Errorf("%w: column %q is %s", ErrTypeClash, b.Schema[j].Name, b.Schema[j].Type)
	}
	if n != b.nrows {
		return nil, fmt.Errorf("%w: vector has %d rows, block has %d", ErrArity, n, b.nrows)
	}
	nb := *b
	nb.cols = append([]colvec(nil), b.cols...)
	nb.cols[j] = cv
	return &nb, nil
}

func typedSlotMatches(typ Type, cv colvec) bool {
	switch typ {
	case TypeInt:
		return cv.ints != nil
	case TypeFloat:
		return cv.floats != nil
	case TypeString:
		return cv.strs != nil
	case TypeBool:
		return cv.bools != nil
	}
	return false
}

// Scratch holds reusable operator buffers — key-encoding bytes, key
// codes, and gather/selection index vectors — threaded explicitly
// through a plan so repeated operator calls stop re-allocating. It is
// deliberately a plain struct, not a sync.Pool: pool scheduling is
// nondeterministic noise this repository's bit-identical guarantees do
// not tolerate in benchmarks, and explicit threading keeps ownership
// obvious. A Scratch must not be shared between concurrent operator
// calls.
type Scratch struct {
	key    []byte   // key-encoding buffer
	codes  []uint64 // build-side key codes
	codes2 []uint64 // probe-side key codes
	idx    []int32  // join gather indexes (left)
	idx2   []int32  // join gather indexes (right)
}

// NewScratch returns an empty scratch. The zero value is also usable.
func NewScratch() *Scratch { return &Scratch{} }

// orNew lets operators accept a nil scratch.
func (sc *Scratch) orNew() *Scratch {
	if sc == nil {
		return &Scratch{}
	}
	return sc
}

// keyBuf returns the (reset) key-encoding buffer.
func (sc *Scratch) keyBuf() []byte { return sc.key[:0] }

// codesBuf returns a length-n code buffer, growing the backing array as
// needed. which selects between the two resident buffers.
func (sc *Scratch) codesBuf(n int, which int) []uint64 {
	p := &sc.codes
	if which == 1 {
		p = &sc.codes2
	}
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	return (*p)[:n]
}

// idxBuf returns a reset gather-index buffer.
func (sc *Scratch) idxBuf(which int) []int32 {
	p := &sc.idx
	if which == 1 {
		p = &sc.idx2
	}
	return (*p)[:0]
}

// putIdx stores a grown gather buffer back so the capacity is reused by
// the next operator call.
func (sc *Scratch) putIdx(which int, s []int32) {
	if which == 1 {
		sc.idx2 = s
	} else {
		sc.idx = s
	}
}

// putKey stores a grown key buffer back.
func (sc *Scratch) putKey(s []byte) { sc.key = s }
