package engine

// Table-driven tests for zone-map predicate refutation, including the
// NaN asymmetries: under the engine's compiled comparison forms, NaN
// rows match <=, >=, != and BETWEEN but never =, < or >.

import (
	"math"
	"testing"

	"modeldata/internal/engine/plan"
)

func intZone(lo, hi int64, rows int64) ZoneMap {
	return ZoneMap{Rows: rows, HasRange: true, Min: Int(lo), Max: Int(hi)}
}

func floatZone(lo, hi float64, rows int64, nan bool) ZoneMap {
	return ZoneMap{Rows: rows, HasRange: true, Min: Float(lo), Max: Float(hi), HasNaN: nan}
}

func TestZoneMayMatchCmp(t *testing.T) {
	cases := []struct {
		name string
		zm   ZoneMap
		op   string
		val  plan.Lit
		want bool
	}{
		// Int range [10, 20].
		{"eq-below", intZone(10, 20, 5), "=", plan.IntLit(5), false},
		{"eq-inside", intZone(10, 20, 5), "=", plan.IntLit(15), true},
		{"eq-above", intZone(10, 20, 5), "=", plan.IntLit(25), false},
		{"lt-at-min", intZone(10, 20, 5), "<", plan.IntLit(10), false},
		{"lt-above-min", intZone(10, 20, 5), "<", plan.IntLit(11), true},
		{"le-below-min", intZone(10, 20, 5), "<=", plan.IntLit(9), false},
		{"le-at-min", intZone(10, 20, 5), "<=", plan.IntLit(10), true},
		{"gt-at-max", intZone(10, 20, 5), ">", plan.IntLit(20), false},
		{"gt-below-max", intZone(10, 20, 5), ">", plan.IntLit(19), true},
		{"ge-above-max", intZone(10, 20, 5), ">=", plan.IntLit(21), false},
		// Constant block: every row is 7.
		{"ne-constant", intZone(7, 7, 5), "!=", plan.IntLit(7), false},
		{"ne-other", intZone(7, 7, 5), "!=", plan.IntLit(8), true},
		{"eq-constant", intZone(7, 7, 5), "=", plan.IntLit(7), true},
		// Int bounds past 2^53 must stay exact (no float collapse).
		{"big-int-exact", intZone(1<<53+1, 1<<53+1, 3), "=", plan.IntLit(1<<53 + 2), false},
		// Float range [1, 2] with NaN present: NaN rows match <= and !=,
		// so those cannot prune; < still can.
		{"nan-le", floatZone(1, 2, 5, true), "<=", plan.FloatLit(0), true},
		{"nan-lt", floatZone(1, 2, 5, true), "<", plan.FloatLit(0), false},
		{"nan-ge", floatZone(1, 2, 5, true), ">=", plan.FloatLit(5), true},
		{"nan-gt", floatZone(1, 2, 5, true), ">", plan.FloatLit(5), false},
		{"nan-ne-constant", floatZone(3, 3, 5, true), "!=", plan.FloatLit(3), true},
		{"nan-eq-below", floatZone(1, 2, 5, true), "=", plan.FloatLit(0), false},
		// NaN literal: = matches nothing; <= matches everything.
		{"lit-nan-eq", floatZone(1, 2, 5, false), "=", plan.FloatLit(math.NaN()), false},
		{"lit-nan-le", floatZone(1, 2, 5, false), "<=", plan.FloatLit(math.NaN()), true},
		// All-NaN column: no range, HasNaN set.
		{"allnan-eq", ZoneMap{Rows: 4, HasNaN: true}, "=", plan.FloatLit(0), false},
		{"allnan-lt", ZoneMap{Rows: 4, HasNaN: true}, "<", plan.FloatLit(0), false},
		{"allnan-le", ZoneMap{Rows: 4, HasNaN: true}, "<=", plan.FloatLit(0), true},
		// Empty block prunes everything.
		{"empty-le", ZoneMap{Rows: 0}, "<=", plan.FloatLit(0), false},
		// No stats at all: conservative "may match".
		{"no-stats", ZoneMap{Rows: 4}, "=", plan.IntLit(1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pred := plan.Cmp{Op: tc.op, Col: "c", Val: tc.val}
			stats := zoneStatsFunc(map[string]ZoneMap{"c": tc.zm})
			if got := ZoneMayMatch(pred, stats); got != tc.want {
				t.Fatalf("ZoneMayMatch(%s %s %v) = %v, want %v", tc.name, tc.op, tc.val, got, tc.want)
			}
		})
	}
}

func TestZoneMayMatchBetween(t *testing.T) {
	cases := []struct {
		name   string
		zm     ZoneMap
		lo, hi plan.Lit
		want   bool
	}{
		{"disjoint-below", intZone(10, 20, 5), plan.IntLit(1), plan.IntLit(5), false},
		{"disjoint-above", intZone(10, 20, 5), plan.IntLit(25), plan.IntLit(30), false},
		{"overlap", intZone(10, 20, 5), plan.IntLit(15), plan.IntLit(25), true},
		{"containing", intZone(10, 20, 5), plan.IntLit(0), plan.IntLit(100), true},
		{"nan-disjoint", floatZone(10, 20, 5, true), plan.FloatLit(1), plan.FloatLit(5), true},
		{"allnan", ZoneMap{Rows: 4, HasNaN: true}, plan.FloatLit(1), plan.FloatLit(5), true},
		{"empty", ZoneMap{Rows: 0}, plan.IntLit(0), plan.IntLit(100), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pred := plan.Between{Col: "c", Lo: tc.lo, Hi: tc.hi}
			stats := zoneStatsFunc(map[string]ZoneMap{"c": tc.zm})
			if got := ZoneMayMatch(pred, stats); got != tc.want {
				t.Fatalf("ZoneMayMatch = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestZoneMayMatchBoolean(t *testing.T) {
	stats := zoneStatsFunc(map[string]ZoneMap{
		"a": intZone(10, 20, 5),
		"b": intZone(7, 7, 5), // constant 7
	})
	aOut := plan.Cmp{Op: "=", Col: "a", Val: plan.IntLit(99)}   // none
	aIn := plan.Cmp{Op: "=", Col: "a", Val: plan.IntLit(15)}    // some
	bAll := plan.Cmp{Op: "=", Col: "b", Val: plan.IntLit(7)}    // all
	unknown := plan.Cmp{Op: "=", Col: "z", Val: plan.IntLit(1)} // no stats

	cases := []struct {
		name string
		e    plan.Expr
		want bool
	}{
		{"nil", nil, true},
		{"and-none-some", plan.And{L: aOut, R: aIn}, false},
		{"and-some-some", plan.And{L: aIn, R: aIn}, true},
		{"or-none-some", plan.Or{L: aOut, R: aIn}, true},
		{"or-none-none", plan.Or{L: aOut, R: aOut}, false},
		{"not-all", plan.Not{E: bAll}, false},
		{"not-none", plan.Not{E: aOut}, true},
		{"colpred", plan.ColPred{Col: "a", Fn: "float"}, true},
		{"unknown-col", unknown, true},
		{"and-none-unknown", plan.And{L: aOut, R: unknown}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ZoneMayMatch(tc.e, stats); got != tc.want {
				t.Fatalf("ZoneMayMatch = %v, want %v", got, tc.want)
			}
		})
	}
}
