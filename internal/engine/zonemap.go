package engine

// Zone-map pruning. A ZoneMap summarizes one column of one on-disk
// segment (row count, min/max, NaN presence); ZoneMayMatch evaluates a
// plan.Expr against those summaries and answers "can any row in this
// segment satisfy the predicate?". The store skips decoding segments
// that cannot match. Correctness hinges on matching the compiled
// predicate semantics in expr.go exactly — in particular its
// Less-based forms, under which a NaN row *matches* `<=`, `>=`, `!=`,
// and BETWEEN (every Less involving NaN is false) while never matching
// `=`, `<`, `>`. The evaluator therefore runs a three-valued logic:
// "none" (no row can match — prunable), "all" (every row matches), and
// "some" (unknown), with And/Or/Not combining tri-states so negations
// stay sound: Not(some)=some, Not(none)=all, Not(all)=none.
//
// The evaluator lives in engine, not plan, because verdicts must use
// Value.Equal/Value.Less — the same exact int64/float comparison
// helpers the row predicates compile to. Re-deriving "is 2^53+1 equal
// to 9007199254740992.0" in a second place is how pruning bugs happen.

import (
	"math"
	"strings"

	"modeldata/internal/engine/plan"
)

// ZoneMap summarizes one column of a segment for pruning decisions.
// HasRange reports whether Min/Max are meaningful: a float column of
// only NaNs (or an empty segment) has no orderable values, so it
// carries HasNaN/Rows but no range.
type ZoneMap struct {
	Rows     int64
	HasRange bool
	Min, Max Value
	HasNaN   bool
}

// tri is the three-valued pruning verdict for one segment.
type tri uint8

const (
	triNone tri = iota // no row in the segment can match
	triSome            // unknown; must decode
	triAll             // every row in the segment matches
)

func (t tri) not() tri {
	switch t {
	case triNone:
		return triAll
	case triAll:
		return triNone
	}
	return triSome
}

func triAnd(a, b tri) tri {
	if a == triNone || b == triNone {
		return triNone
	}
	if a == triAll && b == triAll {
		return triAll
	}
	return triSome
}

func triOr(a, b tri) tri {
	if a == triAll || b == triAll {
		return triAll
	}
	if a == triNone && b == triNone {
		return triNone
	}
	return triSome
}

// ZoneMayMatch reports whether any row of a segment described by stats
// could satisfy pred. stats maps a column name to its zone map; a
// false second return (column absent, stats unavailable) degrades to
// "must decode". A nil pred never prunes. The verdict is conservative:
// false is only returned when no row can match, so pruning is
// correctness-neutral — filters are still re-applied to every decoded
// segment.
func ZoneMayMatch(pred plan.Expr, stats func(col string) (ZoneMap, bool)) bool {
	if pred == nil {
		return true
	}
	return zoneEval(pred, stats) != triNone
}

// zoneEval computes the tri-state verdict for e.
func zoneEval(e plan.Expr, stats func(col string) (ZoneMap, bool)) tri {
	switch t := e.(type) {
	case plan.And:
		return triAnd(zoneEval(t.L, stats), zoneEval(t.R, stats))
	case plan.Or:
		return triOr(zoneEval(t.L, stats), zoneEval(t.R, stats))
	case plan.Not:
		return zoneEval(t.E, stats).not()
	case plan.Cmp:
		zm, ok := stats(t.Col)
		if !ok {
			return triSome
		}
		return zoneCmp(t.Op, zm, valOfLit(t.Val))
	case plan.Between:
		zm, ok := stats(t.Col)
		if !ok {
			return triSome
		}
		return zoneBetween(zm, valOfLit(t.Lo), valOfLit(t.Hi))
	}
	// ColPred closures (and anything future) are opaque: must decode.
	return triSome
}

// litIsNaN reports whether v is a float NaN literal.
func litIsNaN(v Value) bool {
	return v.Type() == TypeFloat && math.IsNaN(v.AsFloat())
}

// zoneCmp evaluates one comparison against a column's zone map. The
// per-operator rules mirror the compiled row forms:
//
//	=  → v.Equal(row)            NaN row never matches; NaN literal never matches
//	<  → row.Less(v)             NaN row never matches
//	>  → v.Less(row)             NaN row never matches
//	<= → !v.Less(row)            NaN row ALWAYS matches
//	>= → !row.Less(v)            NaN row ALWAYS matches
//	!= → !v.Equal(row)           NaN row always matches
//
// so HasNaN forbids "none" verdicts for <=, >=, != but not for =, <, >,
// and forbids "all" verdicts for =, <, > but not for <=, >=, !=.
func zoneCmp(op string, zm ZoneMap, v Value) tri {
	if zm.Rows == 0 {
		return triNone
	}
	switch op {
	case "=":
		if litIsNaN(v) {
			return triNone // x = NaN is false for every x, NaN included
		}
		if !zm.HasRange {
			if zm.HasNaN {
				return triNone // all-NaN column: NaN = v is false
			}
			return triSome
		}
		if v.Less(zm.Min) || zm.Max.Less(v) {
			return triNone
		}
		if zm.Min.Equal(v) && zm.Max.Equal(v) && !zm.HasNaN {
			return triAll
		}
		return triSome
	case "!=", "<>":
		return zoneCmp("=", zm, v).not()
	case "<":
		// row.Less(v): NaN rows never match; NaN literal matches none.
		if !zm.HasRange {
			if zm.HasNaN {
				return triNone // only NaN rows: Less always false
			}
			return triSome
		}
		if !zm.Min.Less(v) {
			return triNone
		}
		if zm.Max.Less(v) && !zm.HasNaN {
			return triAll
		}
		return triSome
	case ">":
		if !zm.HasRange {
			if zm.HasNaN {
				return triNone
			}
			return triSome
		}
		if !v.Less(zm.Max) {
			return triNone
		}
		if v.Less(zm.Min) && !zm.HasNaN {
			return triAll
		}
		return triSome
	case "<=":
		// !v.Less(row): NaN rows always match; NaN literal matches all.
		if !zm.HasRange {
			if zm.HasNaN {
				return triAll
			}
			return triSome
		}
		if v.Less(zm.Min) && !zm.HasNaN {
			return triNone
		}
		if !v.Less(zm.Max) {
			return triAll
		}
		return triSome
	case ">=":
		if !zm.HasRange {
			if zm.HasNaN {
				return triAll
			}
			return triSome
		}
		if zm.Max.Less(v) && !zm.HasNaN {
			return triNone
		}
		if !zm.Min.Less(v) {
			return triAll
		}
		return triSome
	}
	return triSome
}

// zoneBetween evaluates BETWEEN lo AND hi, compiled as
// !row.Less(lo) && !hi.Less(row) — so NaN rows always match, and NaN
// bounds make the whole predicate true for every row.
func zoneBetween(zm ZoneMap, lo, hi Value) tri {
	if zm.Rows == 0 {
		return triNone
	}
	if !zm.HasRange {
		if zm.HasNaN {
			return triAll
		}
		return triSome
	}
	if !zm.HasNaN && (zm.Max.Less(lo) || hi.Less(zm.Min)) {
		return triNone
	}
	if !zm.Min.Less(lo) && !hi.Less(zm.Max) {
		return triAll
	}
	return triSome
}

// zoneStatsFunc adapts a case-insensitive name→ZoneMap table to the
// lookup shape ZoneMayMatch wants.
func zoneStatsFunc(m map[string]ZoneMap) func(string) (ZoneMap, bool) {
	return func(col string) (ZoneMap, bool) {
		zm, ok := m[strings.ToLower(col)]
		return zm, ok
	}
}
