package engine

// Vectorized relational operators over ColumnBlocks. Every operator
// here has a row-based counterpart in ops.go and must produce a
// byte-identical table (same rows, same order, same Value payloads)
// when its output is materialized — golden_test.go enforces this on
// randomized inputs. Determinism rules match the row path: group-by
// and distinct emit in first-appearance order, joins emit in probe
// order with build-side insertion order within a key, and sorts are
// stable.

import (
	"fmt"
	"sort"
)

// --- selections ---

// emptySel is the canonical empty selection. Operator outputs must
// never carry a nil sel (nil means identity), so an empty result gets
// this shared zero-length vector instead.
var emptySel = []int32{}

// withSel returns a shallow copy of b whose logical rows are the given
// absolute (physical) selection.
func (b *ColumnBlock) withSel(sel []int32) *ColumnBlock {
	if sel == nil {
		sel = emptySel
	}
	return &ColumnBlock{Name: b.Name, Schema: b.Schema.Clone(), nrows: b.nrows, sel: sel, cols: b.cols}
}

// whereFunc keeps logical rows for which pred holds. pred receives the
// logical row index and reads columns through the block.
func (b *ColumnBlock) whereFunc(pred func(i int) bool) *ColumnBlock {
	n := b.Len()
	rowsScanned.Add(int64(n))
	var sel []int32
	for i := 0; i < n; i++ {
		if pred(i) {
			sel = append(sel, int32(b.phys(i)))
		}
	}
	return b.withSel(sel)
}

// WhereEq keeps rows whose column equals v, with typed fast paths over
// the column vector; cross-type numeric comparisons fall back to
// Value.Equal and keep its exact semantics.
func (b *ColumnBlock) WhereEq(col string, v Value) (*ColumnBlock, error) {
	j, err := b.ColIndex(col)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	rowsScanned.Add(int64(n))
	var sel []int32
	switch {
	case b.Schema[j].Type == TypeInt && v.typ == TypeInt:
		ints := b.cols[j].ints
		for i := 0; i < n; i++ {
			if p := b.phys(i); ints[p] == v.i {
				sel = append(sel, int32(p))
			}
		}
	case b.Schema[j].Type == TypeString && v.typ == TypeString:
		strs := b.cols[j].strs
		for i := 0; i < n; i++ {
			if p := b.phys(i); strs[p] == v.s {
				sel = append(sel, int32(p))
			}
		}
	case b.Schema[j].Type == TypeBool && v.typ == TypeBool:
		bools := b.cols[j].bools
		for i := 0; i < n; i++ {
			if p := b.phys(i); bools[p] == v.b {
				sel = append(sel, int32(p))
			}
		}
	default:
		for i := 0; i < n; i++ {
			p := b.phys(i)
			if b.valuePhys(p, j).Equal(v) {
				sel = append(sel, int32(p))
			}
		}
	}
	return b.withSel(sel), nil
}

// WhereFloat keeps rows for which pred holds on the numeric column
// widened to float64; rows of non-numeric columns never qualify,
// matching the row path.
func (b *ColumnBlock) WhereFloat(col string, pred func(float64) bool) (*ColumnBlock, error) {
	j, err := b.ColIndex(col)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	rowsScanned.Add(int64(n))
	var sel []int32
	switch b.Schema[j].Type {
	case TypeFloat:
		fs := b.cols[j].floats
		for i := 0; i < n; i++ {
			if p := b.phys(i); pred(fs[p]) {
				sel = append(sel, int32(p))
			}
		}
	case TypeInt:
		ints := b.cols[j].ints
		for i := 0; i < n; i++ {
			if p := b.phys(i); pred(float64(ints[p])) {
				sel = append(sel, int32(p))
			}
		}
	}
	return b.withSel(sel), nil
}

// WhereString keeps rows for which pred holds on the string column.
func (b *ColumnBlock) WhereString(col string, pred func(string) bool) (*ColumnBlock, error) {
	j, err := b.ColIndex(col)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	rowsScanned.Add(int64(n))
	var sel []int32
	if b.Schema[j].Type == TypeString {
		strs := b.cols[j].strs
		for i := 0; i < n; i++ {
			if p := b.phys(i); pred(strs[p]) {
				sel = append(sel, int32(p))
			}
		}
	}
	return b.withSel(sel), nil
}

// --- shape operators ---

// Project returns a block with only the named columns, in order. The
// column vectors and selection are shared, not copied.
func (b *ColumnBlock) Project(cols ...string) (*ColumnBlock, error) {
	idx := make([]int, len(cols))
	schema := make(Schema, len(cols))
	for i, c := range cols {
		j, err := b.ColIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
		schema[i] = b.Schema[j]
	}
	nc := make([]colvec, len(idx))
	for i, j := range idx {
		nc[i] = b.cols[j]
	}
	return &ColumnBlock{Name: b.Name, Schema: schema, nrows: b.nrows, sel: b.sel, cols: nc}, nil
}

// Rename returns a shallow copy with column old renamed to new.
func (b *ColumnBlock) Rename(oldName, newName string) (*ColumnBlock, error) {
	j, err := b.ColIndex(oldName)
	if err != nil {
		return nil, err
	}
	nb := *b
	nb.Schema = b.Schema.Clone()
	nb.Schema[j].Name = newName
	return &nb, nil
}

// Limit returns at most n logical rows.
func (b *ColumnBlock) Limit(n int) *ColumnBlock {
	if n < 0 {
		n = 0
	}
	if n >= b.Len() {
		nb := *b
		return &nb
	}
	if b.sel != nil {
		return b.withSel(b.sel[:n])
	}
	nb := *b
	nb.nrows = n
	return &nb
}

// --- key codes ---

// colKeyKind partitions column types into key spaces: values of
// different kinds never share a key (Value.Key tags them differently).
func colKeyKind(t Type) int {
	switch t {
	case TypeInt, TypeFloat:
		return 0
	case TypeString:
		return 1
	default:
		return 2
	}
}

// keyCodes fills codes[i] with the uint64 key code of logical row i of
// column j. Codes are pre-encoded join/group keys: equal codes iff
// equal Value.Key strings, within one key kind. For int columns
// containing an int64 not exactly representable as float64 the uint64
// space cannot stay collision-free against float bit patterns, so it
// reports ok=false and callers fall back to binary byte keys.
func (b *ColumnBlock) keyCodes(j int, codes []uint64) (ok bool) {
	n := b.Len()
	switch b.Schema[j].Type {
	case TypeInt:
		ints := b.cols[j].ints
		for i := 0; i < n; i++ {
			bits, tag := intKeyBits(ints[b.phys(i)])
			if tag == keyTagBig {
				return false
			}
			codes[i] = bits
		}
	case TypeFloat:
		fs := b.cols[j].floats
		for i := 0; i < n; i++ {
			codes[i] = numKeyBits(fs[b.phys(i)])
		}
	case TypeBool:
		bools := b.cols[j].bools
		for i := 0; i < n; i++ {
			if bools[b.phys(i)] {
				codes[i] = 1
			} else {
				codes[i] = 0
			}
		}
	default:
		return false
	}
	return true
}

// appendKeyAt appends the binary key of logical row i, column j.
func (b *ColumnBlock) appendKeyAt(dst []byte, i, j int) []byte {
	p := b.phys(i)
	switch b.Schema[j].Type {
	case TypeInt:
		bits, tag := intKeyBits(b.cols[j].ints[p])
		return appendTagged64(dst, tag, bits)
	case TypeFloat:
		return appendTagged64(dst, keyTagNum, numKeyBits(b.cols[j].floats[p]))
	case TypeString:
		return appendStringKey(dst, b.cols[j].strs[p])
	case TypeBool:
		return appendBoolKey(dst, b.cols[j].bools[p])
	}
	return append(dst, '?')
}

// --- hash equi-join ---

func prefixSchemaNamed(name string, s Schema) Schema {
	out := make(Schema, len(s))
	for i, c := range s {
		out[i] = Column{Name: name + "." + c.Name, Type: c.Type}
	}
	return out
}

// gather materializes the logical rows named by physical indexes idx
// out of cv into a fresh vector.
func gather(cv colvec, typ Type, idx []int32) colvec {
	var out colvec
	switch typ {
	case TypeInt:
		out.ints = make([]int64, len(idx))
		for i, p := range idx {
			out.ints[i] = cv.ints[p]
		}
	case TypeFloat:
		out.floats = make([]float64, len(idx))
		for i, p := range idx {
			out.floats[i] = cv.floats[p]
		}
	case TypeString:
		out.strs = make([]string, len(idx))
		for i, p := range idx {
			out.strs[i] = cv.strs[p]
		}
	case TypeBool:
		out.bools = make([]bool, len(idx))
		for i, p := range idx {
			out.bools[i] = cv.bools[p]
		}
	}
	return out
}

// equiJoinIdx computes the matching (left, right) physical row-index
// pairs of the hash equi-join of l and r on columns li and ri.
// buildLeft selects the hash-build side explicitly; emission order is
// probe order with build-side insertion order within a key, so the
// build side fully determines output order. The returned slices come
// from sc's index buffers — callers must hand them back with putIdx
// once consumed. sc must be non-nil.
func equiJoinIdx(l, r *ColumnBlock, li, ri int, buildLeft bool, sc *Scratch) (lidx, ridx []int32) {
	build, probe := r, l
	bi, pi := ri, li
	swapped := false
	if buildLeft {
		build, probe = l, r
		bi, pi = li, ri
		swapped = true
	}

	lidx, ridx = sc.idxBuf(0), sc.idxBuf(1)
	emit := func(pPhys, bPhys int32) {
		if swapped {
			lidx = append(lidx, bPhys)
			ridx = append(ridx, pPhys)
		} else {
			lidx = append(lidx, pPhys)
			ridx = append(ridx, bPhys)
		}
	}

	if colKeyKind(l.Schema[li].Type) == colKeyKind(r.Schema[ri].Type) {
		switch {
		case l.Schema[li].Type == TypeString: // both string
			ht := make(map[string][]int32, build.Len())
			bstrs := build.cols[bi].strs
			for i, n := 0, build.Len(); i < n; i++ {
				p := int32(build.phys(i))
				ht[bstrs[p]] = append(ht[bstrs[p]], p)
			}
			pstrs := probe.cols[pi].strs
			for i, n := 0, probe.Len(); i < n; i++ {
				p := int32(probe.phys(i))
				for _, bp := range ht[pstrs[p]] {
					emit(p, bp)
				}
			}
		default: // numeric or bool: uint64 key codes
			bcodes := sc.codesBuf(build.Len(), 0)
			pcodes := sc.codesBuf(probe.Len(), 1)
			if build.keyCodes(bi, bcodes) && probe.keyCodes(pi, pcodes) {
				ht := make(map[uint64][]int32, len(bcodes))
				for i, c := range bcodes {
					ht[c] = append(ht[c], int32(build.phys(i)))
				}
				for i, c := range pcodes {
					p := int32(probe.phys(i))
					for _, bp := range ht[c] {
						emit(p, bp)
					}
				}
			} else {
				// An unrepresentable int64 key appeared: uint64 codes
				// cannot stay collision-free, use binary byte keys.
				ht := make(map[string][]int32, build.Len())
				buf := sc.keyBuf()
				for i, n := 0, build.Len(); i < n; i++ {
					buf = build.appendKeyAt(buf[:0], i, bi)
					ht[string(buf)] = append(ht[string(buf)], int32(build.phys(i)))
				}
				for i, n := 0, probe.Len(); i < n; i++ {
					buf = probe.appendKeyAt(buf[:0], i, pi)
					p := int32(probe.phys(i))
					for _, bp := range ht[string(buf)] {
						emit(p, bp)
					}
				}
				sc.putKey(buf)
			}
		}
	}
	// Mismatched key kinds (e.g. string vs numeric) never join; the
	// output stays empty.
	return lidx, ridx
}

// EquiJoin computes the hash equi-join of b and r on leftCol =
// rightCol. The hash table is built on the smaller input (ties build on
// the right, matching the row path so emission order is identical) from
// pre-encoded uint64 key codes; no per-row key strings are constructed.
// Output columns are prefixed with the block names.
func (b *ColumnBlock) EquiJoin(r *ColumnBlock, leftCol, rightCol string, sc *Scratch) (*ColumnBlock, error) {
	return b.equiJoinBudget(r, leftCol, rightCol, sc, 0, "")
}

// equiJoinBudget is EquiJoin with a spill policy: when budget > 0 and
// the build side's estimated hash footprint exceeds it, the join
// Grace-partitions to disk under dir (see spill.go). Output is
// byte-identical either way.
func (b *ColumnBlock) equiJoinBudget(r *ColumnBlock, leftCol, rightCol string, sc *Scratch, budget int64, dir string) (*ColumnBlock, error) {
	sc = sc.orNew()
	l := b
	li, err := l.ColIndex(leftCol)
	if err != nil {
		return nil, fmt.Errorf("join left: %w", err)
	}
	ri, err := r.ColIndex(rightCol)
	if err != nil {
		return nil, fmt.Errorf("join right: %w", err)
	}
	// Build on the smaller side, exactly as the row path chooses it.
	lidx, ridx := joinPairs(l, r, li, ri, l.Len() < r.Len(), sc, budget, dir)

	out := &ColumnBlock{
		Name:   l.Name + "_" + r.Name,
		Schema: append(prefixSchemaNamed(l.Name, l.Schema), prefixSchemaNamed(r.Name, r.Schema)...),
		nrows:  len(lidx),
		cols:   make([]colvec, 0, len(l.Schema)+len(r.Schema)),
	}
	for j := range l.Schema {
		out.cols = append(out.cols, gather(l.cols[j], l.Schema[j].Type, lidx))
	}
	for j := range r.Schema {
		out.cols = append(out.cols, gather(r.cols[j], r.Schema[j].Type, ridx))
	}
	sc.putIdx(0, lidx)
	sc.putIdx(1, ridx)
	return out, nil
}

// --- group-by ---

// colAggState is the per-(group, aggregate) accumulator. Min/max track
// physical row positions so emission can reconstruct the exact first
// extreme Value (payload bits included) without boxing during the scan.
type colAggState struct {
	sum        float64
	minP, maxP int32
	seen       bool
}

// groupIDs assigns a dense group id to every logical row, in
// first-appearance order, keyed by the composite key columns. It
// returns one id per row plus the physical row of each group's first
// appearance.
func (b *ColumnBlock) groupIDs(keyIdx []int, sc *Scratch) (gids []int32, firstP []int32) {
	n := b.Len()
	gids = make([]int32, n)
	if len(keyIdx) == 1 {
		j := keyIdx[0]
		switch b.Schema[j].Type {
		case TypeString:
			strs := b.cols[j].strs
			m := make(map[string]int32)
			for i := 0; i < n; i++ {
				p := b.phys(i)
				g, ok := m[strs[p]]
				if !ok {
					g = int32(len(firstP))
					m[strs[p]] = g
					firstP = append(firstP, int32(p))
				}
				gids[i] = g
			}
			return gids, firstP
		case TypeInt, TypeFloat, TypeBool:
			codes := sc.codesBuf(n, 0)
			if b.keyCodes(j, codes) {
				m := make(map[uint64]int32)
				for i, c := range codes {
					g, ok := m[c]
					if !ok {
						g = int32(len(firstP))
						m[c] = g
						firstP = append(firstP, int32(b.phys(i)))
					}
					gids[i] = g
				}
				return gids, firstP
			}
		}
	}
	// Composite (or big-int single) keys: binary byte encoding.
	m := make(map[string]int32)
	buf := sc.keyBuf()
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for _, j := range keyIdx {
			buf = b.appendKeyAt(buf, i, j)
		}
		g, ok := m[string(buf)]
		if !ok {
			g = int32(len(firstP))
			m[string(buf)] = g
			firstP = append(firstP, int32(b.phys(i)))
		}
		gids[i] = g
	}
	sc.putKey(buf)
	return gids, firstP
}

// GroupBy groups the block by the given key columns and computes the
// requested aggregates per group in one pass over the column vectors,
// emitting groups in first-appearance order (the same deterministic
// order as the row path). With no key columns a single global group is
// produced, even over empty input. The output is a row table: group-by
// results are small, and the row form keeps the zero-Value semantics of
// empty global MIN/MAX groups representable.
func (b *ColumnBlock) GroupBy(keys []string, aggs []Aggregate, sc *Scratch) (*Table, error) {
	return b.groupByBudget(keys, aggs, sc, 0, "")
}

// groupCols resolves the key and aggregate column indexes (COUNT takes
// no column; its index is -1).
func (b *ColumnBlock) groupCols(keys []string, aggs []Aggregate) (keyIdx, aggIdx []int, err error) {
	keyIdx = make([]int, len(keys))
	for i, k := range keys {
		j, err := b.ColIndex(k)
		if err != nil {
			return nil, nil, err
		}
		keyIdx[i] = j
	}
	aggIdx = make([]int, len(aggs))
	for i, a := range aggs {
		if a.Fn == AggCount {
			aggIdx[i] = -1
			continue
		}
		j, err := b.ColIndex(a.Col)
		if err != nil {
			return nil, nil, err
		}
		aggIdx[i] = j
	}
	return keyIdx, aggIdx, nil
}

// groupByBudget is GroupBy with a spill policy: when budget > 0 and the
// estimated group hash footprint exceeds it, rows Grace-partition to
// disk under dir and each partition aggregates separately (see
// spill.go). Keyless group-bys never spill — one global group needs no
// hash table.
func (b *ColumnBlock) groupByBudget(keys []string, aggs []Aggregate, sc *Scratch, budget int64, dir string) (*Table, error) {
	sc = sc.orNew()
	keyIdx, aggIdx, err := b.groupCols(keys, aggs)
	if err != nil {
		return nil, err
	}
	if budget > 0 && len(keyIdx) > 0 && estHashBytes(b, keyIdx) > budget {
		t, err := b.spillGroupBy(keys, aggs, keyIdx, aggIdx, sc, budget, dir)
		if err == nil {
			return t, nil
		}
		spillFallbacks.Add(1)
	}

	n := b.Len()
	var gids, firstP []int32
	if len(keyIdx) == 0 {
		gids = make([]int32, n)
		if n > 0 {
			firstP = []int32{int32(b.phys(0))}
		}
	} else {
		gids, firstP = b.groupIDs(keyIdx, sc)
	}
	nGroups := len(firstP)
	synthesized := false
	if len(keys) == 0 && nGroups == 0 {
		// SQL semantics: a global aggregate over empty input yields one
		// group (COUNT(*) = 0, MIN/MAX the zero Value).
		nGroups = 1
		synthesized = true
	}

	rows := b.aggregateGroups(keyIdx, aggIdx, aggs, gids, firstP, nGroups, synthesized)
	out, err := NewTable(b.Name+"_group", groupSchema(b, keys, keyIdx, aggs, aggIdx))
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// groupSchema builds the group-by output schema: keys then aggregates,
// identical to the row path.
func groupSchema(b *ColumnBlock, keys []string, keyIdx []int, aggs []Aggregate, aggIdx []int) Schema {
	schema := make(Schema, 0, len(keys)+len(aggs))
	for i, k := range keys {
		schema = append(schema, Column{Name: k, Type: b.Schema[keyIdx[i]].Type})
	}
	for i, a := range aggs {
		name := a.As
		if name == "" {
			name = a.Fn.String() + "_" + a.Col
		}
		typ := TypeFloat
		if a.Fn == AggCount {
			typ = TypeInt
		} else if a.Fn == AggMin || a.Fn == AggMax {
			typ = b.Schema[aggIdx[i]].Type
		}
		schema = append(schema, Column{Name: name, Type: typ})
	}
	return schema
}

// aggregateGroups runs the accumulation passes and emits one output row
// per group, in group-id order. gids/firstP come from groupIDs over the
// same block (so per-group accumulation order is the block's logical
// row order); synthesized emits the single keyless group over empty
// input.
func (b *ColumnBlock) aggregateGroups(keyIdx, aggIdx []int, aggs []Aggregate, gids, firstP []int32, nGroups int, synthesized bool) []Row {
	n := b.Len()

	// Group sizes, shared by COUNT and AVG across all aggregates.
	counts := make([]int64, nGroups)
	for _, g := range gids {
		counts[g]++
	}

	// One accumulation pass per aggregate, column-at-a-time. Per-group
	// sums accumulate in row order, so float results are bit-identical
	// to the row path's row-at-a-time accumulation.
	states := make([][]colAggState, len(aggs))
	for ai, a := range aggs {
		if a.Fn == AggCount {
			continue
		}
		sts := make([]colAggState, nGroups)
		j := aggIdx[ai]
		cv := b.cols[j]
		switch b.Schema[j].Type {
		case TypeInt:
			for i := 0; i < n; i++ {
				p, st := int32(b.phys(i)), &sts[gids[i]]
				v := cv.ints[p]
				st.sum += float64(v)
				if !st.seen || v < cv.ints[st.minP] {
					st.minP = p
				}
				if !st.seen || cv.ints[st.maxP] < v {
					st.maxP = p
				}
				st.seen = true
			}
		case TypeFloat:
			for i := 0; i < n; i++ {
				p, st := int32(b.phys(i)), &sts[gids[i]]
				v := cv.floats[p]
				st.sum += v
				if !st.seen || v < cv.floats[st.minP] {
					st.minP = p
				}
				if !st.seen || cv.floats[st.maxP] < v {
					st.maxP = p
				}
				st.seen = true
			}
		case TypeString:
			for i := 0; i < n; i++ {
				p, st := int32(b.phys(i)), &sts[gids[i]]
				v := cv.strs[p]
				if !st.seen || v < cv.strs[st.minP] {
					st.minP = p
				}
				if !st.seen || cv.strs[st.maxP] < v {
					st.maxP = p
				}
				st.seen = true
			}
		case TypeBool:
			for i := 0; i < n; i++ {
				p, st := int32(b.phys(i)), &sts[gids[i]]
				v := cv.bools[p]
				if !st.seen || (!v && cv.bools[st.minP]) {
					st.minP = p
				}
				if !st.seen || (!cv.bools[st.maxP] && v) {
					st.maxP = p
				}
				st.seen = true
			}
		}
		states[ai] = sts
	}

	out := make([]Row, 0, nGroups)
	width := len(keyIdx) + len(aggs)
	for g := 0; g < nGroups; g++ {
		row := make(Row, 0, width)
		if !synthesized {
			for _, j := range keyIdx {
				row = append(row, b.valuePhys(int(firstP[g]), j))
			}
		}
		for ai, a := range aggs {
			switch a.Fn {
			case AggCount:
				row = append(row, Int(counts[g]))
			case AggSum:
				row = append(row, Float(sumOf(states[ai], g)))
			case AggAvg:
				if counts[g] == 0 {
					row = append(row, Float(0))
				} else {
					row = append(row, Float(sumOf(states[ai], g)/float64(counts[g])))
				}
			case AggMin:
				row = append(row, b.extremeValue(states[ai], g, aggIdx[ai], true))
			case AggMax:
				row = append(row, b.extremeValue(states[ai], g, aggIdx[ai], false))
			}
		}
		out = append(out, row)
	}
	return out
}

func sumOf(sts []colAggState, g int) float64 {
	if sts == nil {
		return 0
	}
	return sts[g].sum
}

// extremeValue reconstructs a group's MIN or MAX Value from its tracked
// physical row; an unseen state (empty global group) yields the zero
// Value, matching the row path's zero aggState.
func (b *ColumnBlock) extremeValue(sts []colAggState, g, j int, min bool) Value {
	if sts == nil || !sts[g].seen {
		return Value{}
	}
	p := sts[g].maxP
	if min {
		p = sts[g].minP
	}
	return b.valuePhys(int(p), j)
}

// --- distinct / order by ---

// Distinct removes duplicate rows, preserving first-appearance order.
// The result is a new selection over the shared column vectors; nothing
// is materialized.
func (b *ColumnBlock) Distinct(sc *Scratch) *ColumnBlock {
	sc = sc.orNew()
	n := b.Len()
	rowsScanned.Add(int64(n))
	var sel []int32
	allIdx := make([]int, len(b.Schema))
	for j := range allIdx {
		allIdx[j] = j
	}
	if len(b.Schema) == 1 {
		// Single-column fast paths share the group-id machinery.
		_, firstP := b.groupIDs(allIdx, sc)
		return b.withSel(firstP)
	}
	seen := make(map[string]bool, n)
	buf := sc.keyBuf()
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for j := range b.Schema {
			buf = b.appendKeyAt(buf, i, j)
		}
		if !seen[string(buf)] {
			seen[string(buf)] = true
			sel = append(sel, int32(b.phys(i)))
		}
	}
	sc.putKey(buf)
	return b.withSel(sel)
}

// OrderBy stably sorts the block by the named column. Only the
// selection vector is permuted; column vectors are shared.
func (b *ColumnBlock) OrderBy(col string, desc bool) (*ColumnBlock, error) {
	j, err := b.ColIndex(col)
	if err != nil {
		return nil, err
	}
	n := b.Len()
	sel := make([]int32, n)
	for i := 0; i < n; i++ {
		sel[i] = int32(b.phys(i))
	}
	var less func(a, bb int32) bool
	cv := b.cols[j]
	switch b.Schema[j].Type {
	case TypeInt:
		less = func(a, bb int32) bool { return cv.ints[a] < cv.ints[bb] }
	case TypeFloat:
		less = func(a, bb int32) bool { return cv.floats[a] < cv.floats[bb] }
	case TypeString:
		less = func(a, bb int32) bool { return cv.strs[a] < cv.strs[bb] }
	case TypeBool:
		less = func(a, bb int32) bool { return !cv.bools[a] && cv.bools[bb] }
	}
	sort.SliceStable(sel, func(x, y int) bool {
		if desc {
			return less(sel[y], sel[x])
		}
		return less(sel[x], sel[y])
	})
	return b.withSel(sel), nil
}
