package engine

import (
	"math"
	"testing"

	"modeldata/internal/rng"
)

// keyCorpus returns values spanning every type and the encoder's corner
// cases: cross-type numeric twins, unrepresentable int64s, NaN, signed
// zero, infinities, empty strings, and strings containing bytes that
// the old separator-based scheme could not distinguish.
func keyCorpus() []Value {
	return []Value{
		Int(0), Int(1), Int(-1), Int(42), Int(1 << 53), Int((1 << 53) + 1),
		Int(-(1 << 53)), Int(-(1 << 53) - 1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(math.Copysign(0, -1)), Float(1), Float(42), Float(1.5),
		Float(math.NaN()), Float(math.Float64frombits(0x7ff8000000000001)),
		Float(math.Inf(1)), Float(math.Inf(-1)), Float(float64(1 << 53)),
		Str(""), Str("a"), Str("ab"), Str("a\x00"), Str("\x00a"), Str("0"), Str("NaN"),
		Bool(true), Bool(false),
	}
}

// TestAppendKeyMatchesKey verifies the load-bearing invariant of the
// binary encoding: two values produce identical AppendKey bytes iff
// their Key() strings are equal. Every operator hash table relies on
// this coincidence.
func TestAppendKeyMatchesKey(t *testing.T) {
	vals := keyCorpus()
	for _, a := range vals {
		for _, b := range vals {
			ka, kb := string(a.AppendKey(nil)), string(b.AppendKey(nil))
			if (ka == kb) != (a.Key() == b.Key()) {
				t.Errorf("AppendKey equality diverges from Key: %v (key %q, enc %x) vs %v (key %q, enc %x)",
					a, a.Key(), ka, b, b.Key(), kb)
			}
		}
	}
}

// TestAppendKeyCompositeInjective verifies that concatenated encodings
// are injective across column boundaries — the old "\x00"-joined Key()
// scheme collided on strings containing the separator.
func TestAppendKeyCompositeInjective(t *testing.T) {
	rows := []Row{
		{Str("a"), Str("b")},
		{Str("a\x00"), Str("b")},
		{Str("a"), Str("\x00b")},
		{Str("ab"), Str("")},
		{Str(""), Str("ab")},
	}
	seen := map[string]int{}
	for i, r := range rows {
		k := string(appendRowKey(nil, r, []int{0, 1}))
		if prev, dup := seen[k]; dup {
			t.Fatalf("rows %d and %d collide on composite key %x", prev, i, k)
		}
		seen[k] = i
	}
}

// TestAppendKeyZeroAllocs pins the hot-path property the operators are
// built on: appending into a buffer with sufficient capacity performs
// no allocations.
func TestAppendKeyZeroAllocs(t *testing.T) {
	vals := keyCorpus()
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range vals {
			buf = v.AppendKey(buf[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendKey allocated %.1f times per run, want 0", allocs)
	}
}

// TestAppendKeyRowKeyZeroAllocs pins the same property for composite
// row keys.
func TestAppendKeyRowKeyZeroAllocs(t *testing.T) {
	row := Row{Int(7), Float(2.5), Str("abc"), Bool(true)}
	idx := []int{0, 1, 2, 3}
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendRowKey(buf[:0], row, idx)
	})
	if allocs != 0 {
		t.Fatalf("appendRowKey allocated %.1f times per run, want 0", allocs)
	}
}

// TestEquiJoinSmallBuildSide checks the shape the build-side choice is
// for: a large probe relation joined against a much smaller reference
// table, on both the row and columnar paths.
func TestEquiJoinSmallBuildSide(t *testing.T) {
	r := rng.New(7)
	const nLeft, nRight = 5000, 8
	left := &Table{Name: "events", Schema: Schema{
		{Name: "region", Type: TypeInt},
		{Name: "val", Type: TypeFloat},
	}}
	for i := 0; i < nLeft; i++ {
		left.Rows = append(left.Rows, Row{Int(int64(r.Intn(nRight * 2))), Float(r.Float64())})
	}
	right := &Table{Name: "regions", Schema: Schema{
		{Name: "rid", Type: TypeInt},
		{Name: "name", Type: TypeString},
	}}
	for i := 0; i < nRight; i++ {
		right.Rows = append(right.Rows, Row{Int(int64(i)), Str(string(rune('a' + i)))})
	}

	want, err := EquiJoin(left, right, "region", "rid")
	if err != nil {
		t.Fatal(err)
	}
	// Half the regions are missing from the reference table; the join
	// must both match and drop rows.
	if len(want.Rows) == 0 || len(want.Rows) == nLeft {
		t.Fatalf("degenerate join: %d of %d rows", len(want.Rows), nLeft)
	}
	// Probe order: output follows the big left table's row order.
	li, _ := left.ColIndex("region")
	pos := 0
	for _, lr := range left.Rows {
		if lr[li].AsInt() < nRight {
			if pos >= len(want.Rows) || !want.Rows[pos][0].Equal(lr[li]) {
				t.Fatalf("join output not in probe order at output row %d", pos)
			}
			pos++
		}
	}
	if pos != len(want.Rows) {
		t.Fatalf("join emitted %d rows, expected %d", len(want.Rows), pos)
	}

	lb, err := FromTable(left)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := FromTable(right)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lb.EquiJoin(rb, "region", "rid", nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTable(t, "small build side", want, got.ToTable())
}
