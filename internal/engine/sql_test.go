package engine

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"modeldata/internal/rng"
)

// sqlFixture builds a small database via SQL itself.
func sqlFixture(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	stmts := []string{
		`CREATE TABLE person (pid INT, name VARCHAR(32), age INT, state VARCHAR(1), income FLOAT)`,
		`INSERT INTO person VALUES (1, 'ann', 3, 'S', 0.0)`,
		`INSERT INTO person VALUES (2, 'bob', 34, 'I', 52000.0), (3, 'cal', 4, 'I', 0.0)`,
		`INSERT INTO person VALUES (4, 'dee', 61, 'R', 31000.0)`,
		`INSERT INTO person VALUES (5, 'eve', 29, 'S', 78000.0)`,
		`CREATE TABLE orders (pid INT, amount FLOAT)`,
		`INSERT INTO orders VALUES (2, 10.5), (2, 20.0), (5, 5.25), (99, 1.0)`,
	}
	for _, s := range stmts {
		if _, err := db.Query(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

func TestSQLCreateInsertSelect(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query(`SELECT * FROM person`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 || len(res.Schema) != 5 {
		t.Fatalf("SELECT * shape: %d×%d", res.Len(), len(res.Schema))
	}
}

func TestSQLProjectionAndAlias(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query(`SELECT pid, name AS who FROM person ORDER BY pid DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if _, err := res.ColIndex("who"); err != nil {
		t.Fatal("alias missing")
	}
	if res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("ORDER BY DESC broken: %v", res.Rows[0])
	}
}

func TestSQLWherePreschoolers(t *testing.T) {
	// Algorithm 1's subpopulation query, nearly verbatim.
	db := sqlFixture(t)
	res, err := db.Query(`SELECT pid FROM person WHERE age >= 0 AND age <= 4`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("preschoolers = %d", res.Len())
	}
	// BETWEEN spelling.
	res2, err := db.Query(`SELECT pid FROM person WHERE age BETWEEN 0 AND 4`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 2 {
		t.Fatalf("BETWEEN preschoolers = %d", res2.Len())
	}
}

func TestSQLWhereOperators(t *testing.T) {
	db := sqlFixture(t)
	cases := map[string]int{
		`SELECT pid FROM person WHERE state = 'I'`:                           2,
		`SELECT pid FROM person WHERE state <> 'I'`:                          3,
		`SELECT pid FROM person WHERE state != 'I'`:                          3,
		`SELECT pid FROM person WHERE age > 30`:                              2,
		`SELECT pid FROM person WHERE age >= 29`:                             3,
		`SELECT pid FROM person WHERE age < 4`:                               1,
		`SELECT pid FROM person WHERE NOT state = 'S'`:                       3,
		`SELECT pid FROM person WHERE state = 'S' OR state = 'R'`:            3,
		`SELECT pid FROM person WHERE (age > 30 AND state = 'I') OR pid = 1`: 2,
		`SELECT pid FROM person WHERE income > 50000.0 AND age < 35`:         2,
	}
	for q, want := range cases {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.Len() != want {
			t.Errorf("%s: rows = %d, want %d", q, res.Len(), want)
		}
	}
}

func TestSQLAggregates(t *testing.T) {
	db := sqlFixture(t)
	n, err := db.QueryScalar(`SELECT COUNT(*) FROM person WHERE state = 'I'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %g", n)
	}
	total, err := db.QueryScalar(`SELECT SUM(income) AS total FROM person`)
	if err != nil {
		t.Fatal(err)
	}
	if total != 161000 {
		t.Fatalf("sum = %g", total)
	}
	avg, err := db.QueryScalar(`SELECT AVG(age) FROM person`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-(3+34+4+61+29)/5.0) > 1e-12 {
		t.Fatalf("avg = %g", avg)
	}
}

func TestSQLGroupBy(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query(`SELECT state, COUNT(*) AS n, MAX(age) AS oldest FROM person GROUP BY state ORDER BY state`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("groups = %d", res.Len())
	}
	// Ordered by state: I, R, S.
	if res.Rows[0][0].AsString() != "I" || res.Rows[0][1].AsInt() != 2 || res.Rows[0][2].AsInt() != 34 {
		t.Fatalf("I group = %v", res.Rows[0])
	}
	// Bare column not in GROUP BY is rejected.
	if _, err := db.Query(`SELECT name, COUNT(*) FROM person GROUP BY state`); !errors.Is(err, ErrSQL) {
		t.Fatalf("got %v", err)
	}
}

func TestSQLJoin(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query(`SELECT person.name, orders.amount FROM person JOIN orders ON pid = pid WHERE orders.amount > 6.0 ORDER BY orders.amount`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("join rows = %d", res.Len())
	}
	if res.Rows[0][0].AsString() != "bob" || res.Rows[0][1].AsFloat() != 10.5 {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
	// Qualified join columns also work.
	res2, err := db.Query(`SELECT COUNT(*) AS n FROM person JOIN orders ON person.pid = orders.pid`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].AsInt() != 3 {
		t.Fatalf("join count = %v", res2.Rows[0])
	}
}

func TestSQLInsertNegativeAndEscapes(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Query(`CREATE TABLE t (x FLOAT, s TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`INSERT INTO t VALUES (-2.5, 'o''brien')`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT * FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsFloat() != -2.5 || res.Rows[0][1].AsString() != "o'brien" {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestSQLScientificAndBoolLiterals(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Query(`CREATE TABLE t (x FLOAT, b BOOLEAN)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`INSERT INTO t VALUES (1.5e3, TRUE), (2.0, FALSE)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT x FROM t WHERE b = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].AsFloat() != 1500 {
		t.Fatalf("res = %v", res.Rows)
	}
}

func TestSQLErrors(t *testing.T) {
	db := sqlFixture(t)
	bad := []string{
		``,
		`SELEC pid FROM person`,
		`SELECT pid FROM`,
		`SELECT pid FROM nope`,
		`SELECT nope FROM person`,
		`SELECT pid FROM person WHERE`,
		`SELECT pid FROM person WHERE age ~ 4`,
		`SELECT pid FROM person WHERE age = `,
		`SELECT pid FROM person LIMIT x`,
		`SELECT SUM(*) FROM person`,
		`SELECT * , pid FROM person`,
		`SELECT pid FROM person extra garbage`,
		`CREATE TABLE t (x NOPETYPE)`,
		`INSERT INTO nope VALUES (1)`,
		`INSERT INTO person VALUES ('wrong', 'arity')`,
		`DROP TABLE person`,
		`SELECT pid FROM person WHERE name = 'unterminated`,
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestSQLQueryScalarErrors(t *testing.T) {
	db := sqlFixture(t)
	if _, err := db.QueryScalar(`SELECT pid FROM person`); !errors.Is(err, ErrSQL) {
		t.Fatalf("multi-row scalar: %v", err)
	}
	if _, err := db.QueryScalar(`SELECT name FROM person WHERE pid = 1`); !errors.Is(err, ErrSQL) {
		t.Fatalf("non-numeric scalar: %v", err)
	}
}

func TestSQLVarcharLengthSuffix(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Query(`CREATE TABLE t (s VARCHAR(255), n INTEGER)`); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema[0].Type != TypeString || tbl.Schema[1].Type != TypeInt {
		t.Fatalf("schema = %v", tbl.Schema)
	}
}

func TestSQLCaseInsensitiveKeywords(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query(`select PID from PERSON where AGE > 30 order by pid`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
}

// TestSQLAgreesWithFluentProperty cross-checks the SQL front end
// against the fluent relational API on randomized data.
func TestSQLAgreesWithFluentProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		db := NewDatabase()
		tbl := MustNewTable("t", Schema{
			{Name: "k", Type: TypeInt},
			{Name: "v", Type: TypeFloat},
		})
		n := 5 + r.Intn(40)
		for i := 0; i < n; i++ {
			tbl.MustInsert(Int(int64(r.Intn(5))), Float(r.Normal(0, 10)))
		}
		db.Put(tbl)
		cut := r.Normal(0, 5)

		// SQL path.
		sqlRes, err := db.Query(fmt.Sprintf(
			`SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t WHERE v > %g GROUP BY k ORDER BY k`, cut))
		if err != nil {
			return false
		}
		// Fluent path.
		fluRes, err := From(tbl).
			WhereFloat("v", func(v float64) bool { return v > cut }).
			GroupBy([]string{"k"},
				Aggregate{Fn: AggCount, As: "n"},
				Aggregate{Fn: AggSum, Col: "v", As: "s"}).
			OrderBy("k", false).
			Run()
		if err != nil {
			return false
		}
		if sqlRes.Len() != fluRes.Len() {
			return false
		}
		for i := range sqlRes.Rows {
			for j := range sqlRes.Rows[i] {
				if !sqlRes.Rows[i][j].Equal(fluRes.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSQLDistinct(t *testing.T) {
	db := sqlFixture(t)
	res, err := db.Query(`SELECT DISTINCT state FROM person ORDER BY state`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("distinct states = %d, want 3", res.Len())
	}
	if res.Rows[0][0].AsString() != "I" || res.Rows[2][0].AsString() != "S" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Without DISTINCT the duplicates remain.
	res2, err := db.Query(`SELECT state FROM person`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 5 {
		t.Fatalf("non-distinct rows = %d", res2.Len())
	}
}
