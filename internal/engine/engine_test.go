package engine

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func peopleTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustNewTable("person", Schema{
		{Name: "pid", Type: TypeInt},
		{Name: "name", Type: TypeString},
		{Name: "age", Type: TypeInt},
		{Name: "income", Type: TypeFloat},
	})
	tbl.MustInsert(Int(1), Str("ann"), Int(3), Float(0))
	tbl.MustInsert(Int(2), Str("bob"), Int(34), Float(52000))
	tbl.MustInsert(Int(3), Str("cal"), Int(4), Float(0))
	tbl.MustInsert(Int(4), Str("dee"), Int(61), Float(31000))
	tbl.MustInsert(Int(5), Str("eve"), Int(29), Float(78000))
	return tbl
}

func TestValueAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 || Float(2.5).AsFloat() != 2.5 ||
		Str("x").AsString() != "x" || !Bool(true).AsBool() {
		t.Fatal("accessors broken")
	}
	if Float(9.9).AsInt() != 9 {
		t.Fatal("float truncation broken")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Fatal("int widening broken")
	}
}

func TestValuePanicsOnWrongType(t *testing.T) {
	cases := []func(){
		func() { Str("x").AsInt() },
		func() { Bool(true).AsFloat() },
		func() { Int(1).AsString() },
		func() { Float(1).AsBool() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3)) || Int(3).Equal(Float(3.5)) {
		t.Fatal("numeric cross-type equality broken")
	}
	if Int(1).Equal(Str("1")) {
		t.Fatal("int should not equal string")
	}
	if Int(3).Key() != Float(3).Key() {
		t.Fatal("numeric keys should match")
	}
}

func TestValueLessTotalOrderProperty(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		// Exactly one of <, =, > holds.
		n := 0
		if va.Less(vb) {
			n++
		}
		if vb.Less(va) {
			n++
		}
		if va.Equal(vb) {
			n++
		}
		return n == 1
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchemaValidation(t *testing.T) {
	_, err := NewTable("t", Schema{{Name: "a", Type: TypeInt}, {Name: "A", Type: TypeInt}})
	if !errors.Is(err, ErrDupeColumn) {
		t.Fatalf("got %v, want ErrDupeColumn", err)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	tbl := MustNewTable("t", Schema{{Name: "a", Type: TypeInt}})
	if err := tbl.Insert(Row{Str("nope")}); !errors.Is(err, ErrTypeClash) {
		t.Fatalf("got %v, want ErrTypeClash", err)
	}
	if err := tbl.Insert(Row{Int(1), Int(2)}); !errors.Is(err, ErrArity) {
		t.Fatalf("got %v, want ErrArity", err)
	}
}

func TestInsertIntWidensToFloat(t *testing.T) {
	tbl := MustNewTable("t", Schema{{Name: "x", Type: TypeFloat}})
	if err := tbl.Insert(Row{Int(5)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][0].Type() != TypeFloat || tbl.Rows[0][0].AsFloat() != 5 {
		t.Fatal("int was not widened to float")
	}
}

func TestSelectProject(t *testing.T) {
	p := peopleTable(t)
	kids := Select(p, func(r Row) bool { return r[2].AsInt() <= 4 })
	if kids.Len() != 2 {
		t.Fatalf("kids = %d rows", kids.Len())
	}
	names, err := Project(kids, "name")
	if err != nil {
		t.Fatal(err)
	}
	if len(names.Schema) != 1 || names.Rows[0][0].AsString() != "ann" {
		t.Fatalf("project wrong: %v", names)
	}
	if _, err := Project(p, "nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("got %v, want ErrNoColumn", err)
	}
}

func TestEquiJoin(t *testing.T) {
	p := peopleTable(t)
	orders := MustNewTable("orders", Schema{
		{Name: "pid", Type: TypeInt},
		{Name: "amount", Type: TypeFloat},
	})
	orders.MustInsert(Int(2), Float(10))
	orders.MustInsert(Int(2), Float(20))
	orders.MustInsert(Int(5), Float(5))
	orders.MustInsert(Int(99), Float(1)) // dangling

	j, err := EquiJoin(p, orders, "pid", "pid")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("join rows = %d, want 3", j.Len())
	}
	if _, err := j.ColIndex("person.name"); err != nil {
		t.Fatalf("prefixed column missing: %v", err)
	}
	// Join columns carry correct pairing.
	for _, r := range j.Rows {
		pidL, _ := j.ColIndex("person.pid")
		pidR, _ := j.ColIndex("orders.pid")
		if !r[pidL].Equal(r[pidR]) {
			t.Fatal("join produced mismatched keys")
		}
	}
}

func TestEquiJoinBuildSideSymmetry(t *testing.T) {
	// The hash join picks the smaller side to build; results must not
	// depend on which side that is.
	small := MustNewTable("s", Schema{{Name: "k", Type: TypeInt}})
	small.MustInsert(Int(1))
	big := MustNewTable("b", Schema{{Name: "k", Type: TypeInt}})
	for i := 0; i < 10; i++ {
		big.MustInsert(Int(int64(i % 2)))
	}
	j1, err := EquiJoin(small, big, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := EquiJoin(big, small, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if j1.Len() != 5 || j2.Len() != 5 {
		t.Fatalf("asymmetric join: %d vs %d", j1.Len(), j2.Len())
	}
	// Left columns of j1 must come from "s".
	if j1.Schema[0].Name != "s.k" || j2.Schema[0].Name != "b.k" {
		t.Fatalf("schemas: %v / %v", j1.Schema, j2.Schema)
	}
}

func TestThetaJoin(t *testing.T) {
	p := peopleTable(t)
	j := ThetaJoin(p, p, func(l, r Row) bool {
		return l[2].AsInt() < r[2].AsInt() // strictly younger
	})
	// 5 people with distinct ages: C(5,2) = 10 ordered young<old pairs.
	if j.Len() != 10 {
		t.Fatalf("theta join rows = %d, want 10", j.Len())
	}
}

func TestGroupByAggregates(t *testing.T) {
	p := peopleTable(t)
	grouped, err := GroupBy(p, nil, []Aggregate{
		{Fn: AggCount, As: "n"},
		{Fn: AggSum, Col: "income", As: "total"},
		{Fn: AggAvg, Col: "age", As: "avg_age"},
		{Fn: AggMin, Col: "age", As: "min_age"},
		{Fn: AggMax, Col: "income", As: "max_inc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Len() != 1 {
		t.Fatalf("global group rows = %d", grouped.Len())
	}
	r := grouped.Rows[0]
	if r[0].AsInt() != 5 {
		t.Errorf("count = %d", r[0].AsInt())
	}
	if r[1].AsFloat() != 161000 {
		t.Errorf("sum = %g", r[1].AsFloat())
	}
	if r[2].AsFloat() != (3+34+4+61+29)/5.0 {
		t.Errorf("avg = %g", r[2].AsFloat())
	}
	if r[3].AsInt() != 3 {
		t.Errorf("min = %d", r[3].AsInt())
	}
	if r[4].AsFloat() != 78000 {
		t.Errorf("max = %g", r[4].AsFloat())
	}
}

func TestGroupByKeys(t *testing.T) {
	tbl := MustNewTable("sales", Schema{
		{Name: "region", Type: TypeString},
		{Name: "amt", Type: TypeFloat},
	})
	tbl.MustInsert(Str("east"), Float(10))
	tbl.MustInsert(Str("west"), Float(20))
	tbl.MustInsert(Str("east"), Float(30))
	g, err := GroupBy(tbl, []string{"region"}, []Aggregate{{Fn: AggSum, Col: "amt", As: "total"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	// First-appearance order: east then west.
	if g.Rows[0][0].AsString() != "east" || g.Rows[0][1].AsFloat() != 40 {
		t.Fatalf("east group = %v", g.Rows[0])
	}
}

func TestGroupByEmptyGlobal(t *testing.T) {
	tbl := MustNewTable("empty", Schema{{Name: "x", Type: TypeInt}})
	g, err := GroupBy(tbl, nil, []Aggregate{{Fn: AggCount, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 || g.Rows[0][0].AsInt() != 0 {
		t.Fatalf("COUNT(*) over empty = %v", g.Rows)
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	a := MustNewTable("a", Schema{{Name: "x", Type: TypeInt}})
	b := MustNewTable("b", Schema{{Name: "x", Type: TypeFloat}})
	if _, err := Union(a, b); !errors.Is(err, ErrSchema) {
		t.Fatalf("got %v, want ErrSchema", err)
	}
}

func TestUnionAndDistinct(t *testing.T) {
	a := MustNewTable("a", Schema{{Name: "x", Type: TypeInt}})
	a.MustInsert(Int(1))
	a.MustInsert(Int(2))
	b := MustNewTable("a", Schema{{Name: "x", Type: TypeInt}})
	b.MustInsert(Int(2))
	b.MustInsert(Int(3))
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 4 {
		t.Fatalf("union rows = %d", u.Len())
	}
	d := Distinct(u)
	if d.Len() != 3 {
		t.Fatalf("distinct rows = %d", d.Len())
	}
}

func TestOrderByAndLimit(t *testing.T) {
	p := peopleTable(t)
	sorted, err := OrderBy(p, "age", true)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Rows[0][1].AsString() != "dee" {
		t.Fatalf("oldest = %v", sorted.Rows[0])
	}
	top2 := Limit(sorted, 2)
	if top2.Len() != 2 {
		t.Fatalf("limit = %d", top2.Len())
	}
	if Limit(p, 100).Len() != 5 || Limit(p, -1).Len() != 0 {
		t.Fatal("limit edge cases")
	}
}

func TestOrderByStable(t *testing.T) {
	tbl := MustNewTable("t", Schema{
		{Name: "k", Type: TypeInt}, {Name: "seq", Type: TypeInt},
	})
	for i := 0; i < 10; i++ {
		tbl.MustInsert(Int(int64(i%2)), Int(int64(i)))
	}
	sorted, err := OrderBy(tbl, "k", false)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, r := range sorted.Rows[:5] { // all k=0, seq must stay ascending
		if r[1].AsInt() < prev {
			t.Fatal("sort not stable")
		}
		prev = r[1].AsInt()
	}
}

func TestExtend(t *testing.T) {
	p := peopleTable(t)
	ext, err := Extend(p, "adult", TypeBool, func(r Row) Value {
		return Bool(r[2].AsInt() >= 18)
	})
	if err != nil {
		t.Fatal(err)
	}
	adults := Select(ext, func(r Row) bool { return r[4].AsBool() })
	if adults.Len() != 3 {
		t.Fatalf("adults = %d", adults.Len())
	}
	if _, err := Extend(p, "age", TypeInt, func(Row) Value { return Int(0) }); !errors.Is(err, ErrDupeColumn) {
		t.Fatalf("got %v, want ErrDupeColumn", err)
	}
}

func TestRename(t *testing.T) {
	p := peopleTable(t)
	r, err := Rename(p, "pid", "id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ColIndex("id"); err != nil {
		t.Fatal("renamed column missing")
	}
	if _, err := p.ColIndex("pid"); err != nil {
		t.Fatal("rename mutated the original")
	}
}

func TestQueryBuilder(t *testing.T) {
	p := peopleTable(t)
	// "Preschoolers" per Algorithm 1: 0 <= age <= 4.
	res, err := From(p).
		WhereFloat("age", func(a float64) bool { return a >= 0 && a <= 4 }).
		Select("pid").
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("preschoolers = %d", res.Len())
	}
	n, err := From(p).WhereEq("name", Str("bob")).Count()
	if err != nil || n != 1 {
		t.Fatalf("count = %d err = %v", n, err)
	}
}

func TestQueryErrorLatching(t *testing.T) {
	p := peopleTable(t)
	_, err := From(p).Select("nope").WhereEq("name", Str("x")).Run()
	if !errors.Is(err, ErrNoColumn) {
		t.Fatalf("got %v, want latched ErrNoColumn", err)
	}
}

func TestQueryScalarFloat(t *testing.T) {
	p := peopleTable(t)
	total, err := From(p).GroupBy(nil, Aggregate{Fn: AggSum, Col: "income", As: "s"}).ScalarFloat()
	if err != nil {
		t.Fatal(err)
	}
	if total != 161000 {
		t.Fatalf("scalar = %g", total)
	}
	if _, err := From(p).ScalarFloat(); err == nil {
		t.Fatal("multi-row scalar should error")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	db.Put(peopleTable(t))
	tbl, err := db.Get("PERSON") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 5 {
		t.Fatal("wrong table")
	}
	clone := db.Clone()
	ct, _ := clone.Get("person")
	ct.Rows[0][1] = Str("mutated")
	orig, _ := db.Get("person")
	if orig.Rows[0][1].AsString() == "mutated" {
		t.Fatal("clone is not deep")
	}
	db.Drop("person")
	if _, err := db.Get("person"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("got %v, want ErrNoTable", err)
	}
	if len(db.Names()) != 0 {
		t.Fatal("Names after drop")
	}
}

func TestPartitionedSelfJoin(t *testing.T) {
	// Agents on a line; interact within the same unit cell.
	agents := MustNewTable("agents", Schema{
		{Name: "id", Type: TypeInt},
		{Name: "pos", Type: TypeFloat},
	})
	for i := 0; i < 12; i++ {
		agents.MustInsert(Int(int64(i)), Float(float64(i)/4)) // cells 0,0,0,0,1,1,1,1,2,2,2,2
	}
	out := PartitionedSelfJoin(agents,
		func(r Row) string { return fmt.Sprintf("%d", int(r[1].AsFloat())) },
		func(a, b Row) bool { return a[0].AsInt() != b[0].AsInt() },
		func(a, b Row) Row { return Row{a[0], b[0]} },
		Schema{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeInt}},
		4)
	// Each cell of 4 agents yields 4*3 ordered pairs; 3 cells.
	if out.Len() != 36 {
		t.Fatalf("self-join rows = %d, want 36", out.Len())
	}
}

func TestPartitionedSelfJoinDeterministic(t *testing.T) {
	agents := MustNewTable("agents", Schema{{Name: "id", Type: TypeInt}})
	for i := 0; i < 30; i++ {
		agents.MustInsert(Int(int64(i)))
	}
	run := func() []Row {
		return PartitionedSelfJoin(agents,
			func(r Row) string { return fmt.Sprintf("%d", r[0].AsInt()%5) },
			func(a, b Row) bool { return true },
			func(a, b Row) Row { return Row{a[0], b[0]} },
			Schema{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeInt}},
			8).Rows
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatal("nondeterministic row count")
	}
	for i := range r1 {
		if !r1[i][0].Equal(r2[i][0]) || !r1[i][1].Equal(r2[i][1]) {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

func TestTableString(t *testing.T) {
	p := peopleTable(t)
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	big := MustNewTable("big", Schema{{Name: "x", Type: TypeInt}})
	for i := 0; i < 30; i++ {
		big.MustInsert(Int(int64(i)))
	}
	if got := big.String(); len(got) == 0 {
		t.Fatal("big table String()")
	}
}

func TestFloatColumn(t *testing.T) {
	p := peopleTable(t)
	ages, err := p.FloatColumn("age")
	if err != nil {
		t.Fatal(err)
	}
	if len(ages) != 5 || ages[0] != 3 {
		t.Fatalf("ages = %v", ages)
	}
	if _, err := p.FloatColumn("name"); !errors.Is(err, ErrTypeClash) {
		t.Fatalf("got %v, want ErrTypeClash", err)
	}
}
