package engine

// Engine-level observability. The query builder and SQL executor carry
// no context.Context, so their metrics report into the process-wide
// obs.Default() registry; modeldata.Run diffs that registry around a
// run to attribute engine activity to it. The key signal is the
// columnar→row fallback: before this existed, a table that failed the
// strict columnar decode silently latched every query onto the row
// path, and the only symptom was a quiet slowdown (the paper's central
// complaint about opaque model-data pipelines). Now each latch
// increments engine.colfallback and the first one per process logs the
// triggering column and type.

import (
	"errors"
	"log"
	"sync"

	"modeldata/internal/obs"
)

// Metric names reported by the engine into obs.Default().
const (
	// MetricColFallback counts query paths latched from columnar to
	// row execution by a failed strict decode.
	MetricColFallback = "engine.colfallback"
	// MetricColQueries counts query paths that ran columnar.
	MetricColQueries = "engine.colpath"
	// MetricRowsScanned counts rows examined by scan operators
	// (row-path Select and columnar Where* filters).
	MetricRowsScanned = "engine.rows_scanned"

	// MetricPlanPlanned counts queries whose join region executed from
	// an optimized plan; MetricPlanDirect counts executions that
	// replayed as written (planner off, no joins, or fallback).
	MetricPlanPlanned = "engine.plan.planned"
	MetricPlanDirect  = "engine.plan.direct"
	// MetricPlanReordered counts planned executions whose join order
	// differed from the written order.
	MetricPlanReordered = "engine.plan.reordered"
	// MetricPlanPushdown counts filters evaluated below a join they
	// were written above.
	MetricPlanPushdown = "engine.plan.pushdown"
	// MetricPlanCanonSorts counts the order-restoring sorts reordered
	// executions pay to stay byte-identical to the written path.
	MetricPlanCanonSorts = "engine.plan.canon_sorts"
	// MetricPlanCacheHits / Misses count join-order cache consultations
	// by Prepared statements.
	MetricPlanCacheHits   = "engine.plan.cache_hits"
	MetricPlanCacheMisses = "engine.plan.cache_misses"

	// MetricProvAnnotatedRows counts rows given why-provenance
	// annotations (at source scans and planned-region exits) by
	// WithProvenance executions. The prov. prefix matches the package
	// that owns the semiring, though the threading lives here.
	MetricProvAnnotatedRows = "prov.annotated_rows"

	// Spill metrics carry the colstore. prefix because the storage layer
	// owns the out-of-core story, even though the spilling operators live
	// here (colstore depends on engine, not the other way around).
	//
	// MetricSpillPartitions counts Grace partitions processed by spilled
	// joins and group-bys; MetricSpillBytes counts bytes written to spill
	// files; MetricSpillFallbacks counts spills abandoned for in-memory
	// execution after a spill-file I/O error.
	MetricSpillPartitions = "colstore.spill_partitions"
	MetricSpillBytes      = "colstore.spill_bytes"
	MetricSpillFallbacks  = "colstore.spill_fallbacks"
)

var (
	colFallbacks = obs.Default().Counter(MetricColFallback)
	colQueries   = obs.Default().Counter(MetricColQueries)
	rowsScanned  = obs.Default().Counter(MetricRowsScanned)

	planPlanned     = obs.Default().Counter(MetricPlanPlanned)
	planDirect      = obs.Default().Counter(MetricPlanDirect)
	planReordered   = obs.Default().Counter(MetricPlanReordered)
	planPushdown    = obs.Default().Counter(MetricPlanPushdown)
	planCanonSorts  = obs.Default().Counter(MetricPlanCanonSorts)
	planCacheHits   = obs.Default().Counter(MetricPlanCacheHits)
	planCacheMisses = obs.Default().Counter(MetricPlanCacheMisses)

	provAnnotated = obs.Default().Counter(MetricProvAnnotatedRows)

	spillPartitions = obs.Default().Counter(MetricSpillPartitions)
	spillBytes      = obs.Default().Counter(MetricSpillBytes)
	spillFallbacks  = obs.Default().Counter(MetricSpillFallbacks)

	fallbackLogOnce sync.Once
)

// fallbackClass names the reason class of a columnar-fallback error via
// its sentinel chain, most-specific first, so the once-per-process log
// line says *why* the row path latched without the reader having to
// parse a wrapped message.
func fallbackClass(err error) string {
	switch {
	case errors.Is(err, ErrMixedColumn):
		return "mixed-column"
	case errors.Is(err, ErrNotNumeric):
		return "not-numeric"
	case errors.Is(err, ErrNoColumn):
		return "missing-column"
	case errors.Is(err, ErrTypeClash):
		return "type-clash"
	default:
		return "other"
	}
}

// noteColFallback records one columnar→row fallback latch. The counter
// fires every time; the log line — naming the column and dynamic type
// that broke the decode — fires once per process so a fallback storm
// cannot flood stderr.
func noteColFallback(err error) {
	colFallbacks.Add(1)
	fallbackLogOnce.Do(func() {
		log.Printf("engine: columnar decode failed (class=%s), latched to row path (further fallbacks counted in %s): %v",
			fallbackClass(err), MetricColFallback, err)
	})
}
