package engine

// Spill-to-disk equivalence: a Grace-partitioned join or group-by at a
// tiny memory budget must return byte-identical tables to the
// unlimited in-memory operators, trial after trial.

import (
	"fmt"
	"testing"

	"modeldata/internal/rng"
)

func TestSpillJoinEquivalence(t *testing.T) {
	r := rng.New(1201)
	for trial := 0; trial < 20; trial++ {
		tr := r.Split()
		left := randomTable(tr, "l", tr.Intn(120))
		right := &Table{Name: "r", Schema: Schema{
			{Name: "rid", Type: TypeInt},
			{Name: "label", Type: TypeString},
		}}
		// Duplicate keys on the build side exercise within-key ordering.
		for i := -3; i <= 3; i++ {
			for d := 0; d <= tr.Intn(3); d++ {
				right.Rows = append(right.Rows, Row{Int(int64(i)), Str(fmt.Sprintf("L%d.%d", i, d))})
			}
		}
		want, err := From(left).Join(right, "id", "rid").Run()
		if err != nil {
			t.Fatalf("trial %d unlimited: %v", trial, err)
		}
		got, err := From(left).Join(right, "id", "rid").
			WithMemoryBudget(1).WithSpillDir(t.TempDir()).Run()
		if err != nil {
			t.Fatalf("trial %d spilled: %v", trial, err)
		}
		requireSameTable(t, fmt.Sprintf("trial %d spilled join", trial), want, got)
	}
}

func TestSpillGroupByEquivalence(t *testing.T) {
	r := rng.New(1301)
	aggs := []Aggregate{
		{Fn: AggCount, As: "n"},
		{Fn: AggSum, Col: "x", As: "sx"},
		{Fn: AggAvg, Col: "x", As: "ax"},
		{Fn: AggMin, Col: "id", As: "mid"},
		{Fn: AggMax, Col: "x", As: "mx"},
	}
	for trial := 0; trial < 20; trial++ {
		tr := r.Split()
		tbl := randomTable(tr, "g", tr.Intn(200))
		keys := [][]string{{"tag"}, {"tag", "flag"}, {"id"}}[tr.Intn(3)]
		want, err := From(tbl).GroupBy(keys, aggs...).Run()
		if err != nil {
			t.Fatalf("trial %d unlimited: %v", trial, err)
		}
		got, err := From(tbl).GroupBy(keys, aggs...).
			WithMemoryBudget(1).WithSpillDir(t.TempDir()).Run()
		if err != nil {
			t.Fatalf("trial %d spilled: %v", trial, err)
		}
		requireSameTable(t, fmt.Sprintf("trial %d spilled group-by", trial), want, got)
	}
}

func TestSpillDeterministicAcrossRuns(t *testing.T) {
	r := rng.New(1409)
	tbl := randomTable(r, "d", 150)
	right := &Table{Name: "r", Schema: Schema{
		{Name: "rid", Type: TypeInt},
		{Name: "label", Type: TypeString},
	}}
	for i := -3; i <= 3; i++ {
		right.Rows = append(right.Rows, Row{Int(int64(i)), Str("a")})
		right.Rows = append(right.Rows, Row{Int(int64(i)), Str("b")})
	}
	first, err := From(tbl).Join(right, "id", "rid").
		WithMemoryBudget(1).WithSpillDir(t.TempDir()).Run()
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	for i := 0; i < 3; i++ {
		again, err := From(tbl).Join(right, "id", "rid").
			WithMemoryBudget(1).WithSpillDir(t.TempDir()).Run()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		requireSameTable(t, fmt.Sprintf("rerun %d", i), first, again)
	}
}

func TestSpillKeylessGroupByNeverSpills(t *testing.T) {
	tbl := randomTable(rng.New(7), "k", 50)
	before := spillPartitions.Value()
	got, err := From(tbl).GroupBy(nil, Aggregate{Fn: AggCount, As: "n"}).
		WithMemoryBudget(1).WithSpillDir(t.TempDir()).Run()
	if err != nil {
		t.Fatalf("keyless: %v", err)
	}
	if spillPartitions.Value() != before {
		t.Fatal("keyless group-by should not spill (single global group)")
	}
	if len(got.Rows) != 1 || got.Rows[0][0].AsInt() != 50 {
		t.Fatalf("keyless COUNT = %v", got.Rows)
	}
}

func TestSpillMetricsAccount(t *testing.T) {
	tbl := randomTable(rng.New(11), "m", 200)
	right := &Table{Name: "r", Schema: Schema{{Name: "rid", Type: TypeInt}}}
	for i := -3; i <= 3; i++ {
		right.Rows = append(right.Rows, Row{Int(int64(i))})
	}
	parts, bytes := spillPartitions.Value(), spillBytes.Value()
	if _, err := From(tbl).Join(right, "id", "rid").
		WithMemoryBudget(1).WithSpillDir(t.TempDir()).Run(); err != nil {
		t.Fatalf("spilled join: %v", err)
	}
	if spillPartitions.Value() <= parts {
		t.Fatal("colstore.spill_partitions did not advance")
	}
	if spillBytes.Value() <= bytes {
		t.Fatal("colstore.spill_bytes did not advance")
	}
}

func TestSpillBadDirFallsBack(t *testing.T) {
	tbl := randomTable(rng.New(13), "f", 100)
	right := &Table{Name: "r", Schema: Schema{{Name: "rid", Type: TypeInt}}}
	for i := -3; i <= 3; i++ {
		right.Rows = append(right.Rows, Row{Int(int64(i))})
	}
	want, err := From(tbl).Join(right, "id", "rid").Run()
	if err != nil {
		t.Fatalf("unlimited: %v", err)
	}
	fb := spillFallbacks.Value()
	got, err := From(tbl).Join(right, "id", "rid").
		WithMemoryBudget(1).WithSpillDir("/dev/null/not-a-dir").Run()
	if err != nil {
		t.Fatalf("bad spill dir should fall back in-memory, got %v", err)
	}
	if spillFallbacks.Value() <= fb {
		t.Fatal("colstore.spill_fallbacks did not advance")
	}
	requireSameTable(t, "fallback join", want, got)
}

func TestSpillPartitionCount(t *testing.T) {
	cases := []struct {
		est, budget int64
		want        int
	}{
		{100, 1000, 2},    // fits after halving: floor of 2
		{1000, 100, 16},   // needs est/p <= budget
		{1 << 40, 1, 128}, // clamped at 128
	}
	for _, tc := range cases {
		if got := spillPartitionCount(tc.est, tc.budget); got != tc.want {
			t.Fatalf("spillPartitionCount(%d, %d) = %d, want %d", tc.est, tc.budget, got, tc.want)
		}
	}
}

func TestSpillDefaultsInherited(t *testing.T) {
	oldB, oldD := SpillDefaults()
	defer SetSpillDefault(oldB, oldD)

	tbl := randomTable(rng.New(17), "s", 120)
	right := &Table{Name: "r", Schema: Schema{{Name: "rid", Type: TypeInt}}}
	for i := -3; i <= 3; i++ {
		right.Rows = append(right.Rows, Row{Int(int64(i))})
	}
	want, err := From(tbl).Join(right, "id", "rid").Run()
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	SetSpillDefault(1, t.TempDir())
	parts := spillPartitions.Value()
	got, err := From(tbl).Join(right, "id", "rid").Run() // inherits the 1-byte default
	if err != nil {
		t.Fatalf("inherited budget: %v", err)
	}
	if spillPartitions.Value() <= parts {
		t.Fatal("process default budget did not trigger spill")
	}
	requireSameTable(t, "inherited-budget join", want, got)

	// WithMemoryBudget(0) forces unlimited even under a process default.
	parts = spillPartitions.Value()
	if _, err := From(tbl).Join(right, "id", "rid").WithMemoryBudget(0).Run(); err != nil {
		t.Fatalf("forced unlimited: %v", err)
	}
	if spillPartitions.Value() != parts {
		t.Fatal("WithMemoryBudget(<=0) should disable spilling")
	}
}
