package simsql

import (
	"errors"
	"sort"
	"sync"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
)

// This file implements the observation of Wang et al. [55], discussed
// in §2.1 of the paper: a step of an agent-based simulation is a
// self-join of the agent table — each agent's next state depends on the
// states of the agents it interacts with. Because agents typically
// interact only with a small group of "nearby" agents, the join can be
// partitioned by a locality key and executed in parallel, and SimSQL
// extends the idea from deterministic to stochastic simulations by
// letting the update draw randomness.

// ErrNilHook is returned when a required ABSStep hook is missing.
var ErrNilHook = errors.New("simsql: ABSStep requires PartKey, Near, Accumulate, and Update hooks")

// ABSStep describes one agent interaction step.
type ABSStep struct {
	// PartKey maps an agent row to its locality partition; agents only
	// interact within a partition.
	PartKey func(engine.Row) string
	// Near reports whether agent b influences agent a (evaluated
	// within a's partition, a ≠ b by row identity is NOT assumed — the
	// hook decides).
	Near func(a, b engine.Row) bool
	// Accumulate folds an influencing agent b into a's accumulator.
	Accumulate func(acc float64, b engine.Row) float64
	// Update computes a's next-state row from its accumulator (and the
	// count of influencing agents) using agent-private randomness.
	Update func(a engine.Row, acc float64, n int, r *rng.Stream) engine.Row
	// Workers bounds partition-level parallelism; zero means 4.
	Workers int
}

// Apply performs one simulation step over the agent table, returning
// the next-state table (same schema). The computation is the
// partitioned stochastic self-join: partitions run in parallel, each
// agent aggregates over its in-partition neighbors, then updates with a
// deterministic per-agent random stream (so results do not depend on
// scheduling).
func (s ABSStep) Apply(agents *engine.Table, seed uint64) (*engine.Table, error) {
	if s.PartKey == nil || s.Near == nil || s.Accumulate == nil || s.Update == nil {
		return nil, ErrNilHook
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 4
	}
	// Pre-split one stream per agent, indexed by original row order, so
	// parallel partitions cannot perturb determinism.
	streams := rng.New(seed).SplitN(agents.Len())

	type member struct {
		idx int
		row engine.Row
	}
	parts := make(map[string][]member)
	for i, r := range agents.Rows {
		k := s.PartKey(r)
		parts[k] = append(parts[k], member{idx: i, row: r})
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	next := make([]engine.Row, agents.Len())
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, k := range keys {
		wg.Add(1)
		go func(members []member) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for _, m := range members {
				acc := 0.0
				n := 0
				for _, o := range members {
					if o.idx == m.idx {
						continue
					}
					if s.Near(m.row, o.row) {
						acc = s.Accumulate(acc, o.row)
						n++
					}
				}
				next[m.idx] = s.Update(m.row, acc, n, streams[m.idx])
			}
		}(parts[k])
	}
	wg.Wait()

	out, err := engine.NewTable(agents.Name, agents.Schema)
	if err != nil {
		return nil, err
	}
	if err := out.InsertAll(next); err != nil {
		return nil, err
	}
	return out, nil
}

// ABSChainDef wraps an ABSStep as a SimSQL chain table definition: the
// agent table's next version is generated from its previous version by
// one interaction step, with initial state produced by init. This is
// how "massive stochastic ABS models inside the database" (§2.1) are
// expressed in this repository.
func ABSChainDef(name string, initTable func(r *rng.Stream) (*engine.Table, error), step ABSStep) TableDef {
	return TableDef{
		Name: name,
		Generate: func(state *engine.Database, r *rng.Stream) (*engine.Table, error) {
			prev, err := state.Get(PrevName(name))
			if err != nil {
				// Version 0: no previous state exists yet.
				return initTable(r)
			}
			return step.Apply(prev, r.Uint64())
		},
	}
}
