package simsql_test

import (
	"fmt"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
	"modeldata/internal/simsql"
)

// ExampleChain_Run generates a database-valued Markov chain whose
// single table doubles (deterministically here) from version to
// version — SimSQL's recursive versioned tables in miniature.
func ExampleChain_Run() {
	schema := engine.Schema{{Name: "v", Type: engine.TypeFloat}}
	chain := &simsql.Chain{Defs: []simsql.TableDef{{
		Name: "stock",
		Generate: func(state *engine.Database, r *rng.Stream) (*engine.Table, error) {
			prev := 1.0
			if pt, err := state.Get(simsql.PrevName("stock")); err == nil {
				prev = 2 * pt.Rows[0][0].AsFloat()
			}
			t, err := engine.NewTable("stock", schema)
			if err != nil {
				return nil, err
			}
			err = t.Insert(engine.Row{engine.Float(prev)})
			return t, err
		},
	}}}
	realz, err := chain.Run(4, 1)
	if err != nil {
		panic(err)
	}
	trace, err := realz.Trace(func(db *engine.Database) (float64, error) {
		t, err := db.Get("stock")
		if err != nil {
			return 0, err
		}
		return t.Rows[0][0].AsFloat(), nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(trace)
	// Output:
	// [1 2 4 8 16]
}
