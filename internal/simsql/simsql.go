// Package simsql implements the SimSQL extension of MCDB described in
// §2.1 of the paper (Cai et al., SIGMOD 2013): stochastic database
// tables may be parametrized by the contents of other stochastic
// tables, definitions may be recursive across versions, and the system
// therefore generates realizations of a database-valued Markov chain
// D[0], D[1], D[2], … — the stochastic mechanism generating D[i] may
// depend explicitly on D[i−1].
//
// The package also provides the agent-based-simulation step of Wang et
// al. (abs.go), which SimSQL-style systems express as a self-join over
// the agent table.
package simsql

import (
	"context"
	"errors"
	"fmt"

	"modeldata/internal/engine"
	"modeldata/internal/obs"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// Common errors.
var (
	ErrNoDefs    = errors.New("simsql: chain has no table definitions")
	ErrNoVersion = errors.New("simsql: no such version")
)

// TableDef defines one stochastic table of the chain. Generate produces
// version i of the table. The state database passed in contains:
//
//   - every static base table,
//   - version i−1 of every chain table under its plain name suffixed
//     "_prev" (for i = 0 the _prev tables are absent), and
//   - version i of every chain table defined earlier in the definition
//     order, under its plain name.
//
// This realizes SimSQL's recursive/versioned semantics: table A's
// generation may read B's current version and its own previous version.
type TableDef struct {
	Name     string
	Generate func(state *engine.Database, r *rng.Stream) (*engine.Table, error)
}

// Chain is a database-valued Markov chain specification.
type Chain struct {
	// Base holds the static (non-random) tables available at every
	// step. May be nil.
	Base *engine.Database
	// Defs are generated in order at every step.
	Defs []TableDef
}

// PrevName is the name under which a chain table's previous version is
// visible to Generate functions.
func PrevName(name string) string { return name + "_prev" }

// Run generates a realization D[0..steps] of the chain (steps+1 states)
// and returns it. Each returned database contains the chain tables
// under their plain names plus the static base tables.
func (c *Chain) Run(steps int, seed uint64) (*Realization, error) {
	return c.RunCtx(context.Background(), steps, seed)
}

// RunCtx is Run with cancellation: ctx is checked between chain steps,
// so a long realization aborts promptly with ctx.Err() once the caller
// gives up.
func (c *Chain) RunCtx(ctx context.Context, steps int, seed uint64) (*Realization, error) {
	if len(c.Defs) == 0 {
		return nil, ErrNoDefs
	}
	if steps < 0 {
		return nil, fmt.Errorf("simsql: steps=%d", steps)
	}
	ctx, span := obs.Start(ctx, "simsql.chain")
	span.SetInt("steps", int64(steps))
	defer span.End()
	r := rng.New(seed)
	base := c.Base
	if base == nil {
		base = engine.NewDatabase()
	}
	realz := &Realization{}
	var prev *engine.Database
	for i := 0; i <= steps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		state := base.Clone()
		if prev != nil {
			for _, def := range c.Defs {
				pt, err := prev.Get(def.Name)
				if err != nil {
					return nil, fmt.Errorf("simsql: version %d: %w", i, err)
				}
				pc := pt.Clone()
				pc.Name = PrevName(def.Name)
				state.Put(pc)
			}
		}
		for _, def := range c.Defs {
			t, err := def.Generate(state, r.Split())
			if err != nil {
				return nil, fmt.Errorf("simsql: version %d table %q: %w", i, def.Name, err)
			}
			t.Name = def.Name
			state.Put(t)
		}
		// Snapshot: drop the _prev views from the published state.
		snap := state.Clone()
		for _, def := range c.Defs {
			snap.Drop(PrevName(def.Name))
		}
		realz.Versions = append(realz.Versions, snap)
		prev = snap
	}
	return realz, nil
}

// Realization is one sampled trajectory of the database-valued Markov
// chain: Versions[i] is D[i].
type Realization struct {
	Versions []*engine.Database
}

// Len returns the number of materialized versions.
func (r *Realization) Len() int { return len(r.Versions) }

// Version returns D[i].
func (r *Realization) Version(i int) (*engine.Database, error) {
	if i < 0 || i >= len(r.Versions) {
		return nil, fmt.Errorf("%w: %d of %d", ErrNoVersion, i, len(r.Versions))
	}
	return r.Versions[i], nil
}

// Table returns table name at version i.
func (r *Realization) Table(name string, i int) (*engine.Table, error) {
	db, err := r.Version(i)
	if err != nil {
		return nil, err
	}
	return db.Get(name)
}

// Trace evaluates a scalar query against every version and returns the
// resulting time series of query results — how SimSQL analyses are
// typically consumed (e.g. expected inventory per epoch).
func (r *Realization) Trace(q func(db *engine.Database) (float64, error)) ([]float64, error) {
	out := make([]float64, len(r.Versions))
	for i, db := range r.Versions {
		v, err := q(db)
		if err != nil {
			return nil, fmt.Errorf("simsql: trace at version %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// MonteCarlo samples nChains independent realizations on the default
// worker pool. See MonteCarloCtx.
func (c *Chain) MonteCarlo(steps, nChains int, seed uint64, q func(db *engine.Database) (float64, error)) ([]float64, error) {
	return c.MonteCarloCtx(context.Background(), steps, nChains, seed, 0, q)
}

// MonteCarloCtx samples nChains independent realizations and returns
// the per-version mean of the scalar query across chains — estimating
// E[f(D[i])] for each i. Chain replicates fan out over the parallel
// runtime: each replicate's seed is drawn from the parent stream in
// replicate order before any worker starts, and per-version traces are
// reduced in replicate order after the loop, so results are
// bit-identical at any worker count. Generate and query hooks must be
// safe for concurrent calls on distinct realizations.
func (c *Chain) MonteCarloCtx(ctx context.Context, steps, nChains int, seed uint64, workers int, q func(db *engine.Database) (float64, error)) ([]float64, error) {
	if nChains <= 0 {
		return nil, fmt.Errorf("simsql: nChains=%d", nChains)
	}
	ctx, span := obs.Start(ctx, "simsql.montecarlo")
	span.SetInt("steps", int64(steps))
	span.SetInt("chains", int64(nChains))
	defer span.End()
	parent := rng.New(seed)
	seeds := make([]uint64, nChains)
	for n := range seeds {
		seeds[n] = parent.Uint64()
	}
	traces := make([][]float64, nChains)
	err := parallel.For(ctx, nChains, parallel.Options{Workers: workers}, func(n int) error {
		realz, err := c.RunCtx(ctx, steps, seeds[n])
		if err != nil {
			return err
		}
		traces[n], err = realz.Trace(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	sums := make([]float64, steps+1)
	for _, trace := range traces {
		for i, v := range trace {
			sums[i] += v
		}
	}
	for i := range sums {
		sums[i] /= float64(nChains)
	}
	return sums, nil
}
