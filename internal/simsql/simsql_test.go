package simsql

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// walkChain defines a database-valued Markov chain holding a single
// one-row table "walk" whose value performs a Gaussian random walk with
// the given drift: D[i].value = D[i−1].value + N(drift, 1).
func walkChain(drift float64) *Chain {
	schema := engine.Schema{{Name: "value", Type: engine.TypeFloat}}
	return &Chain{
		Defs: []TableDef{{
			Name: "walk",
			Generate: func(state *engine.Database, r *rng.Stream) (*engine.Table, error) {
				prevVal := 0.0
				if pt, err := state.Get(PrevName("walk")); err == nil {
					prevVal = pt.Rows[0][0].AsFloat()
				}
				t, err := engine.NewTable("walk", schema)
				if err != nil {
					return nil, err
				}
				err = t.Insert(engine.Row{engine.Float(prevVal + r.Normal(drift, 1))})
				return t, err
			},
		}},
	}
}

func TestChainRunVersions(t *testing.T) {
	c := walkChain(0)
	realz, err := c.Run(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if realz.Len() != 11 {
		t.Fatalf("versions = %d, want 11", realz.Len())
	}
	for i := 0; i < 11; i++ {
		tbl, err := realz.Table("walk", i)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != 1 {
			t.Fatalf("version %d has %d rows", i, tbl.Len())
		}
	}
	if _, err := realz.Version(99); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("got %v", err)
	}
}

func TestChainMarkovDependence(t *testing.T) {
	// With drift 1 and N(1, 1) increments, E[D[i].value] = i+1 at
	// version i (one increment applied at every version including 0).
	c := walkChain(1)
	means, err := c.MonteCarlo(20, 300, 7, func(db *engine.Database) (float64, error) {
		tbl, err := db.Get("walk")
		if err != nil {
			return 0, err
		}
		return tbl.Rows[0][0].AsFloat(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range means {
		want := float64(i + 1)
		if math.Abs(m-want) > 0.5 {
			t.Fatalf("E[D[%d]] = %g, want ≈ %g", i, m, want)
		}
	}
}

func TestChainDeterministicForSeed(t *testing.T) {
	c := walkChain(0)
	r1, err := c.Run(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 5; i++ {
		t1, _ := r1.Table("walk", i)
		t2, _ := r2.Table("walk", i)
		if t1.Rows[0][0].AsFloat() != t2.Rows[0][0].AsFloat() {
			t.Fatal("chain not deterministic")
		}
	}
}

func TestChainCrossTableParametrization(t *testing.T) {
	// SimSQL's headline feature: stochastic table A parametrizes B,
	// and B's previous version parametrizes the next A (§2.1).
	// A[i].v = B[i−1].v + 1 (or 0 at i = 0); B[i].v = 2·A[i].v.
	schema := engine.Schema{{Name: "v", Type: engine.TypeFloat}}
	oneRow := func(v float64) (*engine.Table, error) {
		t, err := engine.NewTable("x", schema)
		if err != nil {
			return nil, err
		}
		err = t.Insert(engine.Row{engine.Float(v)})
		return t, err
	}
	c := &Chain{
		Defs: []TableDef{
			{
				Name: "a",
				Generate: func(state *engine.Database, r *rng.Stream) (*engine.Table, error) {
					base := 0.0
					if pb, err := state.Get(PrevName("b")); err == nil {
						base = pb.Rows[0][0].AsFloat()
					}
					return oneRow(base + 1)
				},
			},
			{
				Name: "b",
				Generate: func(state *engine.Database, r *rng.Stream) (*engine.Table, error) {
					// Reads the CURRENT version of a (defined earlier
					// in this step).
					a, err := state.Get("a")
					if err != nil {
						return nil, err
					}
					return oneRow(2 * a.Rows[0][0].AsFloat())
				},
			},
		},
	}
	realz, err := c.Run(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// a[0]=1, b[0]=2; a[1]=3, b[1]=6; a[2]=7, b[2]=14; a[3]=15, b[3]=30.
	wantA := []float64{1, 3, 7, 15}
	wantB := []float64{2, 6, 14, 30}
	for i := 0; i <= 3; i++ {
		a, _ := realz.Table("a", i)
		b, _ := realz.Table("b", i)
		if a.Rows[0][0].AsFloat() != wantA[i] || b.Rows[0][0].AsFloat() != wantB[i] {
			t.Fatalf("version %d: a=%g b=%g, want a=%g b=%g",
				i, a.Rows[0][0].AsFloat(), b.Rows[0][0].AsFloat(), wantA[i], wantB[i])
		}
	}
}

func TestChainErrors(t *testing.T) {
	if _, err := (&Chain{}).Run(1, 1); !errors.Is(err, ErrNoDefs) {
		t.Fatalf("got %v", err)
	}
	c := walkChain(0)
	if _, err := c.Run(-1, 1); err == nil {
		t.Fatal("negative steps accepted")
	}
	if _, err := c.MonteCarlo(1, 0, 1, nil); err == nil {
		t.Fatal("nChains=0 accepted")
	}
	bad := &Chain{Defs: []TableDef{{
		Name: "x",
		Generate: func(*engine.Database, *rng.Stream) (*engine.Table, error) {
			return nil, errors.New("gen-fail")
		},
	}}}
	if _, err := bad.Run(1, 1); err == nil {
		t.Fatal("generator error swallowed")
	}
}

// flockAgents builds agents scattered on a line, keyed into unit cells.
func flockAgents(t *testing.T, n int, seed uint64) *engine.Table {
	t.Helper()
	r := rng.New(seed)
	agents := engine.MustNewTable("agents", engine.Schema{
		{Name: "id", Type: engine.TypeInt},
		{Name: "pos", Type: engine.TypeFloat},
	})
	for i := 0; i < n; i++ {
		agents.MustInsert(engine.Int(int64(i)), engine.Float(r.Float64()*4))
	}
	return agents
}

// flockStep moves each agent halfway toward the mean position of its
// cell-mates (no randomness in Update unless noise > 0).
func flockStep(noise float64) ABSStep {
	return ABSStep{
		PartKey:    func(r engine.Row) string { return fmt.Sprintf("%d", int(r[1].AsFloat())) },
		Near:       func(a, b engine.Row) bool { return true },
		Accumulate: func(acc float64, b engine.Row) float64 { return acc + b[1].AsFloat() },
		Update: func(a engine.Row, acc float64, n int, r *rng.Stream) engine.Row {
			pos := a[1].AsFloat()
			if n > 0 {
				pos += 0.5 * (acc/float64(n) - pos)
			}
			if noise > 0 {
				pos += r.Normal(0, noise)
			}
			return engine.Row{a[0], engine.Float(pos)}
		},
	}
}

func TestABSStepFlockingContracts(t *testing.T) {
	agents := flockAgents(t, 200, 3)
	// Within-cell variance must shrink after a deterministic step.
	perCellVar := func(tbl *engine.Table) float64 {
		cells := make(map[int][]float64)
		for _, r := range tbl.Rows {
			c := int(r[1].AsFloat())
			cells[c] = append(cells[c], r[1].AsFloat())
		}
		ids := make([]int, 0, len(cells))
		for c := range cells {
			ids = append(ids, c)
		}
		sort.Ints(ids) // fixed fold order keeps the bound bit-stable
		total := 0.0
		for _, c := range ids {
			total += stats.Variance(cells[c])
		}
		return total
	}
	before := perCellVar(agents)
	next, err := flockStep(0).Apply(agents, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := perCellVar(next)
	if after >= before/2 {
		t.Fatalf("within-cell variance %g → %g, expected strong contraction", before, after)
	}
	if next.Len() != agents.Len() {
		t.Fatalf("agent count changed: %d → %d", agents.Len(), next.Len())
	}
}

func TestABSStepDeterministic(t *testing.T) {
	agents := flockAgents(t, 50, 4)
	step := flockStep(0.1)
	a, err := step.Apply(agents, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := step.Apply(agents, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i][1].AsFloat() != b.Rows[i][1].AsFloat() {
			t.Fatal("ABSStep not deterministic for fixed seed")
		}
	}
}

func TestABSStepNilHooks(t *testing.T) {
	agents := flockAgents(t, 5, 5)
	if _, err := (ABSStep{}).Apply(agents, 1); !errors.Is(err, ErrNilHook) {
		t.Fatalf("got %v", err)
	}
}

func TestABSChainDef(t *testing.T) {
	init := func(r *rng.Stream) (*engine.Table, error) {
		agents := engine.MustNewTable("agents", engine.Schema{
			{Name: "id", Type: engine.TypeInt},
			{Name: "pos", Type: engine.TypeFloat},
		})
		for i := 0; i < 40; i++ {
			agents.MustInsert(engine.Int(int64(i)), engine.Float(r.Float64()*2))
		}
		return agents, nil
	}
	c := &Chain{Defs: []TableDef{ABSChainDef("agents", init, flockStep(0))}}
	realz, err := c.Run(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := realz.Trace(func(db *engine.Database) (float64, error) {
		tbl, err := db.Get("agents")
		if err != nil {
			return 0, err
		}
		pos, err := tbl.FloatColumn("pos")
		if err != nil {
			return 0, err
		}
		return stats.Variance(pos), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if trace[len(trace)-1] >= trace[0] {
		t.Fatalf("flocking variance did not shrink: %g → %g", trace[0], trace[len(trace)-1])
	}
}
