package obs

// The typed metrics registry. Counters, gauges, and histograms are
// named, get-or-create, and safe for concurrent use; a Registry
// snapshot is deterministic (sorted by name) so run reports and golden
// tests can compare them byte-for-byte. Metric names follow the
// <layer>.<noun>[_<unit>] scheme documented in DESIGN.md §8, e.g.
// "engine.colfallback", "task.backoff_ns", "mapreduce.shuffle_bytes".

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; a nil *Counter absorbs calls.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric (a level, not a rate). The zero
// value is ready to use; a nil *Gauge absorbs calls.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates float64 observations into fixed buckets.
// Bucket i counts observations v with v <= Bounds[i] (and the last
// implicit bucket counts the overflow). A nil *Histogram absorbs calls.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	n      int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra overflow bucket
	Counts []int64
	Count  int64
	Sum    float64
}

// Mean returns the mean of the observations, or 0 for an empty
// histogram.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
	}
}

// Registry is a concurrent name → metric map. Metrics are get-or-create
// so independent layers can share a counter by agreeing on its name. A
// nil *Registry hands out nil metrics, which absorb all calls — callers
// never need a nil check.
type Registry struct {
	mu sync.Mutex
	// bounded by the compiled-in counter names: get-or-create keys are
	// string constants at instrumentation sites, never request data
	counters map[string]*Counter // guarded by mu
	// bounded by the compiled-in gauge names
	gauges map[string]*Gauge // guarded by mu
	// bounded by the compiled-in histogram names
	hists map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// std is the process-wide default registry, the reporting target for
// layers whose APIs carry no context (the relational engine's query
// paths). Per-run accounting lives in per-run registries
// (parallel.Stats); modeldata.Run diffs std around a run to attribute
// its global counters.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (which must be sorted ascending) on first use.
// Later calls with different bounds return the existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a Registry, safe to retain and
// compare. Maps are keyed by metric name.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistSnapshot
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Sub returns the counter-wise difference s − prev: what happened
// between the two snapshots. Gauges keep their current (s) values;
// histogram counts and sums are differenced bucket-wise when the bounds
// match and kept from s otherwise.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Counts) != len(h.Counts) {
			out.Histograms[name] = h
			continue
		}
		d := HistSnapshot{
			Bounds: h.Bounds,
			Counts: make([]int64, len(h.Counts)),
			Count:  h.Count - p.Count,
			Sum:    h.Sum - p.Sum,
		}
		for i := range h.Counts {
			d.Counts[i] = h.Counts[i] - p.Counts[i]
		}
		out.Histograms[name] = d
	}
	return out
}

// Merge folds other's counters and histograms into a copy of s (gauges
// from other win). It lets a run report combine per-run registry
// counters with global-registry deltas.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(other.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)+len(other.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)+len(other.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range other.Counters {
		out.Counters[name] += v
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range other.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h
	}
	for name, h := range other.Histograms {
		out.Histograms[name] = h
	}
	return out
}

// String renders the snapshot as sorted "name value" lines —
// deterministic regardless of map iteration order, so reports are
// stable across runs.
func (s Snapshot) String() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%-32s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%-32s %d (gauge)", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%-32s n=%d mean=%s", name, h.Count, trimFloat(h.Mean())))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// trimFloat formats a float compactly for reports.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 { //lint:allow floateq display formatting only: exact integer check picks the shorter rendering
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
