package obs

// Profiling hooks: thin, error-propagating wrappers over runtime/pprof
// so command-line tools (cmd/experiments -cpuprofile/-memprofile) stay
// one-liner thin and every profile file is properly flushed and closed.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns a
// stop function that ends the profile and closes the file. Exactly one
// CPU profile may be active per process.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close() //lint:allow errdrop error-path cleanup; the profile start error is the one to surface
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live
// memory, not garbage awaiting collection) and writes a heap profile to
// path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close() //lint:allow errdrop error-path cleanup; the profile write error is the one to surface
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
