package obs

// Hierarchical spans in the Dapper style: a Tracer collects a tree of
// timed spans, parented through context.Context, so one experiment run
// unfolds into modeldata.run → experiment.E1 → mcdb.instantiate_bundled
// → parallel.for → parallel.iter without any layer knowing about the
// layers above it. Span timestamps come from the Tracer's injectable
// Clock; tracing is strictly observational and a traced run is
// bit-identical to an untraced one.

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Tracer collects spans for one process or run. All methods are safe
// for concurrent use; a nil *Tracer disables tracing (Start returns a
// nil span).
type Tracer struct {
	clock Clock

	mu sync.Mutex
	// bounded by the scrape cycle: /debug/trace swaps in a fresh Tracer
	// and drops this one, so spans accumulate only between scrapes
	spans  []*Span // guarded by mu
	nextID uint64  // guarded by mu
}

// NewTracer returns a Tracer timed by the wall clock.
func NewTracer() *Tracer { return NewTracerClock(Wall) }

// NewTracerClock returns a Tracer timed by c (tests inject a
// ManualClock so traces are deterministic).
func NewTracerClock(c Clock) *Tracer {
	if c == nil {
		c = Wall
	}
	return &Tracer{clock: c}
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation in the trace tree. Create spans with
// Start; a nil *Span absorbs every call, so instrumentation sites never
// check whether tracing is on.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64 // 0 for root spans
	name   string
	start  time.Time

	mu  sync.Mutex
	end time.Time // guarded by mu; zero until End
	// bounded by the instrumentation sites: each span gets a fixed
	// handful of SetAttr calls, never per-iteration appends
	attrs []Attr // guarded by mu
}

// start registers a new span. parent 0 makes a root span.
func (t *Tracer) start(name string, parent uint64) *Span {
	now := t.clock.Now()
	t.mu.Lock()
	t.nextID++
	sp := &Span{tr: t, id: t.nextID, parent: parent, name: name, start: now}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// WithTracer returns a context whose Start calls record spans into tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, tr)
}

// TracerFrom returns the tracer installed on ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// Enabled reports whether ctx carries a tracer — a cheap guard for hot
// loops that want to skip per-iteration Start calls entirely when
// tracing is off.
func Enabled(ctx context.Context) bool { return TracerFrom(ctx) != nil }

// Start begins a span named name, parented under the span already on
// ctx (if any), and returns a context carrying the new span for child
// calls. Without a tracer on ctx it returns (ctx, nil) and costs two
// context lookups. Always End the returned span; End is nil-safe:
//
//	ctx, sp := obs.Start(ctx, "mcdb.exec")
//	defer sp.End()
func Start(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	var parent uint64
	if ps, ok := ctx.Value(spanKey).(*Span); ok {
		parent = ps.id
	}
	sp := tr.start(name, parent)
	return context.WithValue(ctx, spanKey, sp), sp
}

// End marks the span finished at the tracer clock's current time.
// Idempotent: only the first End sticks.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.clock.Now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// SetAttr annotates the span with a key/value pair.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SpanInfo is an immutable copy of one span, for inspection and export.
type SpanInfo struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Start  time.Time
	End    time.Time // equals Start when the span never ended
	Attrs  []Attr
}

// Duration returns the span's recorded extent.
func (si SpanInfo) Duration() time.Duration { return si.End.Sub(si.Start) }

// Snapshot copies every recorded span in creation order. Spans still
// running are reported with End = Start.
func (t *Tracer) Snapshot() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanInfo, len(spans))
	for i, sp := range spans {
		sp.mu.Lock()
		end := sp.end
		attrs := append([]Attr(nil), sp.attrs...)
		sp.mu.Unlock()
		if end.IsZero() {
			end = sp.start
		}
		out[i] = SpanInfo{
			ID:     sp.id,
			Parent: sp.parent,
			Name:   sp.name,
			Start:  sp.start,
			End:    end,
			Attrs:  attrs,
		}
	}
	return out
}

// MaxDepth returns the deepest parent chain over the recorded spans
// (a lone root span has depth 1); 0 when no spans were recorded.
func (t *Tracer) MaxDepth() int {
	spans := t.Snapshot()
	depth := make(map[uint64]int, len(spans))
	max := 0
	// Spans are recorded in creation order, so a parent always precedes
	// its children and one pass suffices.
	for _, sp := range spans {
		d := depth[sp.Parent] + 1
		depth[sp.ID] = d
		if d > max {
			max = d
		}
	}
	return max
}
