package obs

// Chrome trace-event export. The dump is a single JSON object in the
// trace-event format ("traceEvents" with complete "X" events), which
// chrome://tracing, Perfetto, and speedscope all load directly. Span
// identity and parentage ride in each event's args, so the tree can be
// reconstructed exactly even where the viewer's time-nesting heuristic
// is ambiguous (overlapping sibling spans from parallel workers).

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
)

// chromeEvent is one trace-event entry. Timestamps and durations are
// microseconds, as the format requires.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Synthetic args keys carrying span identity in the exported trace.
// The "span." prefix is reserved: a user attr under it is overwritten
// by the synthetic value, and unprefixed user attrs (including ones
// literally named "id" or "parent") pass through untouched — so no
// attr name a caller picks can corrupt span parentage.
const (
	// ArgsSpanID is the args key holding the span's own id.
	ArgsSpanID = "span.id"
	// ArgsSpanParent is the args key holding the parent span's id.
	ArgsSpanParent = "span.parent"
)

// WriteChromeTrace writes every recorded span as a Chrome trace-event
// JSON document. Timestamps are microseconds relative to the earliest
// span start; each event's args carry the span id (ArgsSpanID), parent
// id (ArgsSpanParent), and attributes. Events appear in span-creation
// order (deterministic for a deterministic clock and schedule).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if len(spans) > 0 {
		epoch := spans[0].Start
		for _, sp := range spans {
			if sp.Start.Before(epoch) {
				epoch = sp.Start
			}
		}
		for _, sp := range spans {
			// User attrs first, synthetic identity last: the reserved
			// span.* keys always win, so parentage survives any attr
			// name (a user attr named "id" used to clobber it here).
			args := make(map[string]string, len(sp.Attrs)+2)
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			args[ArgsSpanID] = formatID(sp.ID)
			args[ArgsSpanParent] = formatID(sp.Parent)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: sp.Name,
				Cat:  "span",
				Ph:   "X",
				Ts:   float64(sp.Start.Sub(epoch)) / 1e3,
				Dur:  float64(sp.End.Sub(sp.Start)) / 1e3,
				Pid:  1,
				Tid:  1,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteChromeTraceFile writes the trace to path, creating or
// truncating it.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close() //lint:allow errdrop error-path cleanup; the trace write error is the one to surface
		return err
	}
	return f.Close()
}

func formatID(id uint64) string { return strconv.FormatUint(id, 10) }
