package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// epoch is an arbitrary fixed instant for deterministic clocks.
var epoch = time.Date(2014, 6, 22, 0, 0, 0, 0, time.UTC)

func TestManualClock(t *testing.T) {
	c := NewManualClock(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now = %v, want %v", got, epoch)
	}
	c.Advance(3 * time.Second)
	if got := c.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("after Advance: Now = %v", got)
	}
	c.Set(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("after Set: Now = %v", got)
	}
}

func TestClockFromDefaultsToWall(t *testing.T) {
	ctx := context.Background()
	if ClockFrom(ctx) != Wall {
		t.Fatalf("ClockFrom(empty ctx) is not Wall")
	}
	mc := NewManualClock(epoch)
	if got := ClockFrom(WithClock(ctx, mc)); got != Clock(mc) {
		t.Fatalf("ClockFrom did not return the installed clock")
	}
}

func TestSpanTreeAndDepth(t *testing.T) {
	mc := NewManualClock(epoch)
	tr := NewTracerClock(mc)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := Start(ctx, "run")
	mc.Advance(time.Millisecond)
	ctx2, mid := Start(ctx1, "experiment")
	mc.Advance(time.Millisecond)
	_, leaf := Start(ctx2, "loop")
	leaf.SetInt("n", 42)
	mc.Advance(time.Millisecond)
	leaf.End()
	mid.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Parent != 0 || spans[1].Parent != spans[0].ID || spans[2].Parent != spans[1].ID {
		t.Fatalf("bad parent chain: %+v", spans)
	}
	if d := tr.MaxDepth(); d != 3 {
		t.Fatalf("MaxDepth = %d, want 3", d)
	}
	if got := spans[2].Duration(); got != time.Millisecond {
		t.Fatalf("leaf duration = %v, want 1ms", got)
	}
	if len(spans[2].Attrs) != 1 || spans[2].Attrs[0] != (Attr{Key: "n", Value: "42"}) {
		t.Fatalf("leaf attrs = %+v", spans[2].Attrs)
	}
	// Sibling under the root: parented to root, not to the ended leaf.
	_, sib := Start(ctx1, "sibling")
	sib.End()
	spans = tr.Snapshot()
	if spans[3].Parent != spans[0].ID {
		t.Fatalf("sibling parent = %d, want root %d", spans[3].Parent, spans[0].ID)
	}
}

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "nothing")
	if sp != nil {
		t.Fatalf("Start without tracer returned a span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without tracer changed the context")
	}
	if Enabled(ctx) {
		t.Fatalf("Enabled = true without tracer")
	}
	// All span methods are nil-safe.
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
}

func TestSpanEndIdempotent(t *testing.T) {
	mc := NewManualClock(epoch)
	tr := NewTracerClock(mc)
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "op")
	mc.Advance(time.Second)
	sp.End()
	mc.Advance(time.Hour)
	sp.End() // must not move the end time
	if d := tr.Snapshot()[0].Duration(); d != time.Second {
		t.Fatalf("duration after double End = %v, want 1s", d)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := Start(ctx, "child")
			sp.SetInt("i", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 33 {
		t.Fatalf("got %d spans, want 33", len(spans))
	}
	seen := map[uint64]bool{}
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		seen[sp.ID] = true
		if sp.Name == "child" && sp.Parent != spans[0].ID {
			t.Fatalf("child parent = %d, want %d", sp.Parent, spans[0].ID)
		}
	}
}

func TestChromeTraceOutput(t *testing.T) {
	mc := NewManualClock(epoch)
	tr := NewTracerClock(mc)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "run")
	mc.Advance(2 * time.Millisecond)
	_, child := Start(ctx, "stage")
	child.SetAttr("kind", "map")
	mc.Advance(time.Millisecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	run, stage := doc.TraceEvents[0], doc.TraceEvents[1]
	if run.Name != "run" || run.Ph != "X" || run.Ts != 0 || run.Dur != 3000 {
		t.Fatalf("run event = %+v", run)
	}
	if stage.Ts != 2000 || stage.Dur != 1000 {
		t.Fatalf("stage event = %+v", stage)
	}
	if stage.Args[ArgsSpanParent] != run.Args[ArgsSpanID] {
		t.Fatalf("stage parent %q != run id %q", stage.Args[ArgsSpanParent], run.Args[ArgsSpanID])
	}
	if stage.Args["kind"] != "map" {
		t.Fatalf("stage attrs missing: %+v", stage.Args)
	}
}

// TestChromeTraceAttrCollision is the regression for the silent
// parentage corruption: user attrs named "id"/"parent" must export
// untouched, and even an attr under the reserved span.* prefix cannot
// displace the synthetic identity keys.
func TestChromeTraceAttrCollision(t *testing.T) {
	mc := NewManualClock(epoch)
	tr := NewTracerClock(mc)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "run")
	_, child := Start(ctx, "stage")
	child.SetAttr("id", "user-id")         // used to overwrite the span id
	child.SetAttr("parent", "user-parent") // used to overwrite the parent link
	child.SetAttr("span.id", "evil")       // reserved prefix: synthetic wins
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	run, stage := doc.TraceEvents[0], doc.TraceEvents[1]
	if stage.Args[ArgsSpanParent] != run.Args[ArgsSpanID] {
		t.Fatalf("colliding attrs corrupted parentage: parent %q, run id %q",
			stage.Args[ArgsSpanParent], run.Args[ArgsSpanID])
	}
	if stage.Args[ArgsSpanID] == "evil" {
		t.Fatal("reserved span.id key lost to a user attr")
	}
	if stage.Args["id"] != "user-id" || stage.Args["parent"] != "user-parent" {
		t.Fatalf("unprefixed user attrs dropped: %+v", stage.Args)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace(empty): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("traceEvents = %v, want empty array", doc["traceEvents"])
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("layer.things")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("layer.things") != c {
		t.Fatalf("Counter is not get-or-create")
	}
	g := r.Gauge("layer.level")
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(1)
	r.Histogram("z", 1, 2).Observe(1)
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil registry counter = %d", v)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot has counters: %v", snap.Counters)
	}
	var c *Counter
	c.Add(5)
	var g *Gauge
	g.Set(5)
	var h *Histogram
	h.Observe(5)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// v <= bound lands in that bucket: 0.5 and 1 in [..1], 5 in (1..10],
	// 50 in (10..100], 500 overflows.
	want := []int64{2, 1, 1, 1}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(want))
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 5 || s.Sum != 556.5 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
	if got := s.Mean(); got != 556.5/5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSnapshotSubAndMerge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(10)
	pre := r.Snapshot()
	c.Add(5)
	r.Counter("b").Add(1)
	diff := r.Snapshot().Sub(pre)
	if diff.Counters["a"] != 5 || diff.Counters["b"] != 1 {
		t.Fatalf("diff = %v", diff.Counters)
	}
	other := NewRegistry()
	other.Counter("a").Add(2)
	other.Counter("c").Add(3)
	merged := diff.Merge(other.Snapshot())
	if merged.Counters["a"] != 7 || merged.Counters["b"] != 1 || merged.Counters["c"] != 3 {
		t.Fatalf("merged = %v", merged.Counters)
	}
}

func TestSnapshotStringDeterministic(t *testing.T) {
	r := NewRegistry()
	for i := 9; i >= 0; i-- {
		r.Counter(fmt.Sprintf("m%d", i)).Add(int64(i))
	}
	first := r.Snapshot().String()
	for i := 0; i < 10; i++ {
		if got := r.Snapshot().String(); got != first {
			t.Fatalf("Snapshot.String is nondeterministic:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h", 10, 100).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("shared").Value(); v != 8000 {
		t.Fatalf("shared = %d, want 8000", v)
	}
	if n := r.Histogram("h", 10, 100).Snapshot().Count; n != 8000 {
		t.Fatalf("hist count = %d, want 8000", n)
	}
}
