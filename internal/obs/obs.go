// Package obs is the observability layer of the runtime: hierarchical
// spans, a typed metrics registry, and profiling hooks, all built on
// the standard library alone.
//
// The paper's central operational pain point is that model-data
// workflows fail opaquely — a Monte Carlo run that silently falls back
// to a slow path, retries crashed tasks, or degrades statistically
// looks identical to a healthy one from the outside. This package makes
// those paths visible without compromising the repository's determinism
// contract (DESIGN.md §6):
//
//   - Wall-clock time is read only through an injectable Clock, so the
//     rngsource lint can keep banning ambient time.Now() everywhere
//     else. Clock values flow into traces and reports, never into keyed
//     or numeric experiment output.
//   - Spans and metrics are observation-only: a run with a Tracer and
//     Registry installed produces bit-identical results to a run
//     without them, at any worker count.
//   - Everything is nil-safe. A nil *Span, *Counter, *Gauge,
//     *Histogram, or *Registry absorbs calls without allocating, so hot
//     loops instrument unconditionally and pay near zero when
//     observability is off.
//
// Spans and the Registry travel through context.Context (WithTracer,
// WithClock), mirroring how the parallel runtime plumbs worker bounds
// and stats. Traces export in the Chrome trace-event format
// (WriteChromeTrace), loadable in chrome://tracing or Perfetto.
package obs

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts wall-clock reads so that every timestamp in the
// observability layer is injectable: production uses Wall, tests use a
// ManualClock, and the rngsource lint allows time.Now() only inside
// this seam.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

// Now reads the real wall clock. This is the one place in the
// repository (outside internal/rng) permitted to call time.Now; the
// value is measurement-only and never feeds into experiment results.
func (wallClock) Now() time.Time { return time.Now() }

// Wall is the real wall clock.
var Wall Clock = wallClock{}

// ManualClock is a deterministic Clock for tests: it returns a
// programmed instant and only moves when told to. Safe for concurrent
// use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a ManualClock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now returns the programmed instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

type ctxKey int

const (
	clockKey ctxKey = iota
	tracerKey
	spanKey
)

// WithClock returns a context whose observability layers read time from
// c instead of the wall clock.
func WithClock(ctx context.Context, c Clock) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, clockKey, c)
}

// ClockFrom returns the clock installed on ctx, defaulting to Wall.
func ClockFrom(ctx context.Context) Clock {
	if c, ok := ctx.Value(clockKey).(Clock); ok {
		return c
	}
	return Wall
}
