// Package des is a small discrete-event simulation kernel — the
// substrate for the §2.3 motivating example (a demand model M1 feeding
// a queueing model M2 whose output is the average waiting time of the
// first 100 customers) and, more broadly, the DEVS-style event-driven
// modeling the paper lists among composite-simulation frameworks.
//
// The kernel is a classic future-event-list design: events are
// scheduled at simulated times and executed in (time, sequence) order;
// handlers may schedule further events. Determinism is guaranteed by
// breaking time ties on insertion sequence.
package des

import (
	"container/heap"
	"errors"
	"fmt"
)

// Common errors.
var (
	ErrPastEvent = errors.New("des: cannot schedule an event in the past")
	ErrStopped   = errors.New("des: simulator already stopped")
)

// Handler executes one event at its scheduled time.
type Handler func(sim *Simulator)

// event is one future-event-list entry.
type event struct {
	time float64
	seq  uint64
	fn   Handler
}

// eventQueue orders events by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time { //lint:allow floateq event order must be an exact total order; timestamp ties break by seq, never by tolerance
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulator owns the clock and the future event list.
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool
	// Executed counts handled events.
	Executed int
}

// NewSimulator returns a simulator at time 0.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.now }

// Schedule books fn at absolute simulated time t ≥ Now.
func (s *Simulator) Schedule(t float64, fn Handler) error {
	if t < s.now {
		return fmt.Errorf("%w: t=%g < now=%g", ErrPastEvent, t, s.now)
	}
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, fn: fn})
	return nil
}

// ScheduleAfter books fn delay time units from now.
func (s *Simulator) ScheduleAfter(delay float64, fn Handler) error {
	return s.Schedule(s.now+delay, fn)
}

// Stop ends the run after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the event list drains, Stop is called, or
// the clock would pass horizon (horizon ≤ 0 means no horizon). The
// clock never exceeds the horizon.
func (s *Simulator) Run(horizon float64) error {
	if s.stopped {
		return ErrStopped
	}
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if horizon > 0 && e.time > horizon {
			s.now = horizon
			return nil
		}
		s.now = e.time
		e.fn(s)
		s.Executed++
		if s.stopped {
			return nil
		}
	}
	return nil
}
