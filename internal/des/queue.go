package des

import (
	"fmt"

	"modeldata/internal/rng"
)

// This file implements the §2.3 queueing model M2: given a sequence of
// customer arrival times produced by a demand model M1, a single-server
// FIFO queue serves them with random service times, and the model
// output Y2 is the average waiting time of the first K customers.

// ErrNoArrivals is returned when the queue model is run without input.
var ErrNoArrivals = fmt.Errorf("des: queue needs at least one arrival")

// QueueResult reports one queue simulation.
type QueueResult struct {
	// AvgWait is the average time customers spent waiting for service
	// (excluding service itself) over the first K completions.
	AvgWait float64
	// Served is the number of customers completed (≤ K).
	Served int
	// MakeSpan is the simulated time at which measurement ended.
	MakeSpan float64
}

// SimulateQueue runs a single-server FIFO queue over the given arrival
// times, drawing each service time from service, and returns the
// average waiting time of the first k customers (or all customers if
// fewer arrive). Arrival times must be non-decreasing.
func SimulateQueue(arrivals []float64, service rng.Dist, k int, r *rng.Stream) (QueueResult, error) {
	if len(arrivals) == 0 {
		return QueueResult{}, ErrNoArrivals
	}
	if k <= 0 || k > len(arrivals) {
		k = len(arrivals)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			return QueueResult{}, fmt.Errorf("des: arrivals not sorted at %d", i)
		}
	}
	sim := NewSimulator()
	var (
		serverBusy bool
		waiting    []float64 // arrival times of queued customers
		totalWait  float64
		served     int
	)
	var startService func(s *Simulator, arrivalTime float64)
	startService = func(s *Simulator, arrivalTime float64) {
		serverBusy = true
		totalWait += s.Now() - arrivalTime
		served++
		if served >= k {
			// Measurement complete once the K-th customer begins
			// service (its wait is known).
			s.Stop()
			return
		}
		dur := service.Sample(r)
		if dur < 0 {
			dur = 0
		}
		if err := s.ScheduleAfter(dur, func(s *Simulator) {
			serverBusy = false
			if len(waiting) > 0 {
				next := waiting[0]
				waiting = waiting[1:]
				startService(s, next)
			}
		}); err != nil {
			panic(err) // delay ≥ 0 by construction
		}
	}
	for _, at := range arrivals {
		at := at
		if err := sim.Schedule(at, func(s *Simulator) {
			if serverBusy {
				waiting = append(waiting, at)
				return
			}
			startService(s, at)
		}); err != nil {
			return QueueResult{}, err
		}
	}
	if err := sim.Run(0); err != nil {
		return QueueResult{}, err
	}
	if served == 0 {
		return QueueResult{}, ErrNoArrivals
	}
	return QueueResult{
		AvgWait:  totalWait / float64(served),
		Served:   served,
		MakeSpan: sim.Now(),
	}, nil
}

// PoissonArrivals draws n exponential inter-arrival gaps at the given
// rate and returns the cumulative arrival times — the §2.3 demand
// model M1.
func PoissonArrivals(n int, rate float64, r *rng.Stream) []float64 {
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += r.Exponential(rate)
		out[i] = t
	}
	return out
}
