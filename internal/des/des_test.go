package des

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

func TestEventOrdering(t *testing.T) {
	sim := NewSimulator()
	var order []int
	sched := func(at float64, id int) {
		if err := sim.Schedule(at, func(*Simulator) { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	sched(3, 3)
	sched(1, 1)
	sched(2, 2)
	sched(1, 10) // same time as id 1: insertion order breaks the tie
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 10, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sim.Executed != 4 {
		t.Fatalf("executed = %d", sim.Executed)
	}
}

func TestScheduleInPast(t *testing.T) {
	sim := NewSimulator()
	if err := sim.Schedule(5, func(s *Simulator) {
		if err := s.Schedule(1, func(*Simulator) {}); !errors.Is(err, ErrPastEvent) {
			t.Errorf("got %v, want ErrPastEvent", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestHorizonStopsClock(t *testing.T) {
	sim := NewSimulator()
	fired := false
	if err := sim.Schedule(100, func(*Simulator) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event past the horizon fired")
	}
	if sim.Now() != 10 {
		t.Fatalf("clock = %g, want 10", sim.Now())
	}
}

func TestStopAndRestart(t *testing.T) {
	sim := NewSimulator()
	if err := sim.Schedule(1, func(s *Simulator) { s.Stop() }); err != nil {
		t.Fatal(err)
	}
	if err := sim.Schedule(2, func(*Simulator) { t.Fatal("ran past Stop") }); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); !errors.Is(err, ErrStopped) {
		t.Fatalf("got %v, want ErrStopped", err)
	}
}

func TestCascadingEvents(t *testing.T) {
	sim := NewSimulator()
	count := 0
	var tick Handler
	tick = func(s *Simulator) {
		count++
		if count < 10 {
			if err := s.ScheduleAfter(1, tick); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sim.Schedule(0, tick); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 10 || sim.Now() != 9 {
		t.Fatalf("count=%d now=%g", count, sim.Now())
	}
}

func TestQueueValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := SimulateQueue(nil, rng.ExponentialDist{Rate: 1}, 5, r); !errors.Is(err, ErrNoArrivals) {
		t.Fatalf("got %v", err)
	}
	if _, err := SimulateQueue([]float64{2, 1}, rng.ExponentialDist{Rate: 1}, 5, r); err == nil {
		t.Fatal("unsorted arrivals accepted")
	}
}

func TestQueueNoWaitWhenIdle(t *testing.T) {
	// Arrivals far apart with short services: nobody waits.
	r := rng.New(2)
	arrivals := []float64{0, 100, 200, 300}
	res, err := SimulateQueue(arrivals, rng.UniformDist{Lo: 0.1, Hi: 0.2}, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgWait != 0 || res.Served != 4 {
		t.Fatalf("res = %+v", res)
	}
}

func TestQueueBackToBackWaits(t *testing.T) {
	// Two simultaneous arrivals, deterministic 1-unit service: the
	// second waits exactly 1.
	r := rng.New(3)
	res, err := SimulateQueue([]float64{0, 0}, rng.UniformDist{Lo: 1, Hi: 1 + 1e-12}, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgWait-0.5) > 1e-9 {
		t.Fatalf("avg wait = %g, want 0.5", res.AvgWait)
	}
}

func TestMM1MeanWaitMatchesTheory(t *testing.T) {
	// M/M/1 queueing theory: Wq = ρ/(μ−λ) with λ=0.5, μ=1 ⇒ Wq = 1.
	const lambda, mu = 0.5, 1.0
	parent := rng.New(7)
	var waits []float64
	for rep := 0; rep < 200; rep++ {
		r := parent.Split()
		arrivals := PoissonArrivals(3000, lambda, r)
		// Warm-up: measure all 3000 and keep the run mean (steady-state
		// bias is small over 3000 customers).
		res, err := SimulateQueue(arrivals, rng.ExponentialDist{Rate: mu}, 3000, r)
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, res.AvgWait)
	}
	mean := stats.Mean(waits)
	want := (lambda / mu) / (mu - lambda)
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("M/M/1 mean wait = %g, want ≈ %g", mean, want)
	}
}

func TestPoissonArrivalsShape(t *testing.T) {
	r := rng.New(9)
	a := PoissonArrivals(1000, 2, r)
	if len(a) != 1000 {
		t.Fatal("length")
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatal("arrivals not increasing")
		}
	}
	// Mean inter-arrival ≈ 1/rate.
	if gap := a[len(a)-1] / 1000; math.Abs(gap-0.5) > 0.05 {
		t.Fatalf("mean gap = %g, want ≈ 0.5", gap)
	}
}

func TestQueueDeterministic(t *testing.T) {
	run := func() float64 {
		r := rng.New(11)
		arrivals := PoissonArrivals(200, 1, r)
		res, err := SimulateQueue(arrivals, rng.ExponentialDist{Rate: 1.2}, 100, r)
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgWait
	}
	if run() != run() {
		t.Fatal("queue not deterministic")
	}
}
