package composite_test

import (
	"fmt"

	"modeldata/internal/composite"
)

// ExampleOptimalAlpha reproduces the §2.3 closed form: with M1 twenty
// times more expensive than M2 and half the output variance explained
// by the shared input, cache aggressively.
func ExampleOptimalAlpha() {
	s := composite.Statistics{C1: 20, C2: 1, V1: 2, V2: 1}
	alpha := composite.OptimalAlpha(s, 0.01)
	fmt.Printf("α* = %.4f\n", alpha)
	fmt.Printf("g(1)/g(α*) = %.2f\n", composite.GAlpha(1, s)/composite.GAlpha(alpha, s))
	// Output:
	// α* = 0.2236
	// g(1)/g(α*) = 1.39
}
