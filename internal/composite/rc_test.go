package composite

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// linkedStage builds the analytically tractable two-stage model
// Y1 ~ N(mu, s1²), Y2 = Y1 + N(0, s2²), for which θ = mu, V1 = s1²+s2²,
// and V2 = Cov(Y2, Y2' | shared Y1) = s1².
func linkedStage(mu, s1, s2, c1, c2 float64) TwoStage {
	return TwoStage{
		M1: func(r *rng.Stream) float64 { return r.Normal(mu, s1) },
		M2: func(y1 float64, r *rng.Stream) float64 { return y1 + r.Normal(0, s2) },
		C1: c1,
		C2: c2,
	}
}

func TestRunRCCounts(t *testing.T) {
	ts := linkedStage(5, 1, 1, 10, 1)
	run, err := ts.RunRC(100, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.M1Runs != 25 || run.M2Runs != 100 {
		t.Fatalf("runs: m=%d n=%d", run.M1Runs, run.M2Runs)
	}
	if run.Cost != 25*10+100*1 {
		t.Fatalf("cost = %g", run.Cost)
	}
	if len(run.Samples) != 100 {
		t.Fatalf("samples = %d", len(run.Samples))
	}
}

func TestRunRCUnbiased(t *testing.T) {
	ts := linkedStage(7, 1, 0.5, 1, 1)
	parent := rng.New(2)
	const reps = 300
	thetas := make([]float64, reps)
	for i := range thetas {
		run, err := ts.RunRC(50, 0.2, parent.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		thetas[i] = run.Theta
	}
	if m := stats.Mean(thetas); math.Abs(m-7) > 0.1 {
		t.Fatalf("E[θ̂] = %g, want ≈ 7", m)
	}
}

func TestRunRCAlphaValidation(t *testing.T) {
	ts := linkedStage(0, 1, 1, 1, 1)
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := ts.RunRC(10, a, 1); !errors.Is(err, ErrBadAlpha) {
			t.Fatalf("α=%g accepted", a)
		}
	}
	if _, err := ts.RunRC(0, 0.5, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestRunBudgeted(t *testing.T) {
	ts := linkedStage(3, 1, 1, 10, 1)
	run, err := ts.RunBudgeted(1000, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if run.Cost > 1000 {
		t.Fatalf("cost %g exceeds budget", run.Cost)
	}
	// One more M2 replication must not fit.
	n := run.M2Runs + 1
	next := math.Ceil(0.5*float64(n))*10 + float64(n)
	if next <= 1000 {
		t.Fatalf("N(c) not maximal: n=%d next cost %g", run.M2Runs, next)
	}
	if _, err := ts.RunBudgeted(0.5, 0.5, 3); err == nil {
		t.Fatal("hopeless budget accepted")
	}
}

func TestGAlphaDegenerateCases(t *testing.T) {
	s := Statistics{C1: 10, C2: 1, V1: 4, V2: 1}
	// α = 1 (no caching): r_α = 1, bracket = 2−2 = 0 ⇒ g = (c1+c2)·V1.
	if got, want := GAlpha(1, s), (10.0+1)*4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("g(1) = %g, want %g", got, want)
	}
	// GTilde at α = 1 agrees with GAlpha.
	if math.Abs(GTilde(1, s)-GAlpha(1, s)) > 1e-12 {
		t.Fatal("g and g̃ differ at α=1")
	}
	// At α = 1/k the floor is exact, so g = g̃.
	for _, k := range []float64{2, 4, 10} {
		a := 1 / k
		if math.Abs(GAlpha(a, s)-GTilde(a, s)) > 1e-9 {
			t.Fatalf("g(1/%g) = %g vs g̃ = %g", k, GAlpha(a, s), GTilde(a, s))
		}
	}
}

func TestOptimalAlphaFormula(t *testing.T) {
	// α* = sqrt((c2/c1)/(V1/V2 − 1)).
	s := Statistics{C1: 100, C2: 1, V1: 5, V2: 1}
	want := math.Sqrt((1.0 / 100) / (5 - 1))
	if got := OptimalAlpha(s, 1e-6); math.Abs(got-want) > 1e-12 {
		t.Fatalf("α* = %g, want %g", got, want)
	}
	// V2 = 0: M1 effectively deterministic → minimum α.
	if got := OptimalAlpha(Statistics{C1: 1, C2: 1, V1: 1, V2: 0}, 0.01); got != 0.01 {
		t.Fatalf("V2=0: α* = %g", got)
	}
	// V1 = V2: M2 a deterministic transformer → α = 1.
	if got := OptimalAlpha(Statistics{C1: 1, C2: 1, V1: 2, V2: 2}, 0.01); got != 1 {
		t.Fatalf("V1=V2: α* = %g", got)
	}
	// Truncation to 1 when the formula exceeds it.
	if got := OptimalAlpha(Statistics{C1: 1, C2: 100, V1: 1.01, V2: 1}, 0.01); got != 1 {
		t.Fatalf("truncation: α* = %g", got)
	}
}

func TestOptimalAlphaMinimizesGTilde(t *testing.T) {
	s := Statistics{C1: 50, C2: 1, V1: 3, V2: 1}
	astar := OptimalAlpha(s, 1e-6)
	g := GTilde(astar, s)
	for _, a := range []float64{0.01, 0.05, 0.1, 0.2, 0.5, 0.9, 1} {
		if GTilde(a, s) < g-1e-9 {
			t.Fatalf("g̃(%g) = %g < g̃(α*) = %g", a, GTilde(a, s), g)
		}
	}
}

func TestPilotEstimateRecoversVariances(t *testing.T) {
	// V1 = s1² + s2² = 1 + 0.25; V2 = s1² = 1.
	ts := linkedStage(0, 1, 0.5, 7, 3)
	s, err := ts.PilotEstimate(4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.C1 != 7 || s.C2 != 3 {
		t.Fatalf("costs: %v", s)
	}
	if math.Abs(s.V1-1.25) > 0.1 {
		t.Fatalf("V1 = %g, want ≈ 1.25", s.V1)
	}
	if math.Abs(s.V2-1) > 0.1 {
		t.Fatalf("V2 = %g, want ≈ 1", s.V2)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	if _, err := ts.PilotEstimate(1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

// TestRCVarianceMatchesTheory is the heart of experiment F2: for a
// fixed budget, the sample variance of the budgeted estimator scaled by
// the budget approaches g(α).
func TestRCVarianceMatchesTheory(t *testing.T) {
	ts := linkedStage(0, 1, 1, 20, 1)
	s := Statistics{C1: ts.C1, C2: ts.C2, V1: 2, V2: 1}
	parent := rng.New(11)
	const budget = 4000.0
	const reps = 600
	for _, alpha := range []float64{0.25, 1} {
		us := make([]float64, reps)
		for i := range us {
			run, err := ts.RunBudgeted(budget, alpha, parent.Uint64())
			if err != nil {
				t.Fatal(err)
			}
			us[i] = run.Theta
		}
		scaled := stats.Variance(us) * budget
		want := GAlpha(alpha, s)
		if math.Abs(scaled-want)/want > 0.25 {
			t.Fatalf("α=%g: c·Var(U(c)) = %g, want ≈ g(α) = %g", alpha, scaled, want)
		}
	}
}

// TestRCCachingBeatsNoCaching verifies the paper's headline: with M1
// expensive and V2 < V1, running at α* is strictly more efficient than
// α = 1.
func TestRCCachingBeatsNoCaching(t *testing.T) {
	s := Statistics{C1: 20, C2: 1, V1: 2, V2: 1}
	astar := OptimalAlpha(s, 1e-3)
	if GAlpha(astar, s) >= GAlpha(1, s) {
		t.Fatalf("g(α*)=%g not better than g(1)=%g", GAlpha(astar, s), GAlpha(1, s))
	}
}
