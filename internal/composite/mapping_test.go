package composite

import (
	"errors"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
)

// mappingFixture: a census model emits (person_id, years, wage); an
// epi model expects (pid, age, adult).
func mappingFixture(t *testing.T) *Composite {
	t.Helper()
	producer := &Model{
		Name: "census",
		Outputs: []PortSpec{{
			Name: "people", Kind: KindTable,
			Columns: []string{"person_id", "years", "wage"},
		}},
		Run: func(_ map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			tbl := engine.MustNewTable("people", engine.Schema{
				{Name: "person_id", Type: engine.TypeInt},
				{Name: "years", Type: engine.TypeInt},
				{Name: "wage", Type: engine.TypeFloat},
			})
			tbl.MustInsert(engine.Int(1), engine.Int(30), engine.Float(100))
			tbl.MustInsert(engine.Int(2), engine.Int(3), engine.Float(0))
			return map[string]Dataset{"people": TableData("people", tbl)}, nil
		},
	}
	consumer := &Model{
		Name: "epi",
		Inputs: []PortSpec{{
			Name: "pop", Kind: KindTable, Columns: []string{"pid", "age", "adult"},
		}},
		Outputs: []PortSpec{{Name: "adults", Kind: KindScalar}},
		Run: func(in map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			tbl := in["pop"].Table
			adultIdx, err := tbl.ColIndex("adult")
			if err != nil {
				return nil, err
			}
			n := 0.0
			for _, row := range tbl.Rows {
				if row[adultIdx].AsBool() {
					n++
				}
			}
			return map[string]Dataset{"adults": ScalarData("adults", n)}, nil
		},
	}
	c := NewComposite()
	if err := c.Register(producer); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(consumer); err != nil {
		t.Fatal(err)
	}
	return c
}

func standardMapping() SchemaMapping {
	return SchemaMapping{
		Renames: map[string]string{"pid": "person_id", "age": "years"},
		Derived: map[string]DerivedColumn{
			"adult": {
				Type: engine.TypeBool,
				Fn: func(src engine.Row) engine.Value {
					return engine.Bool(src[1].AsInt() >= 18)
				},
			},
		},
	}
}

func TestConnectWithMappingEndToEnd(t *testing.T) {
	c := mappingFixture(t)
	if err := c.ConnectWithMapping("census", "people", "epi", "pop", standardMapping()); err != nil {
		t.Fatal(err)
	}
	results, err := c.Run(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Output(results, "epi", "adults")
	if err != nil {
		t.Fatal(err)
	}
	if out.Scalar != 1 {
		t.Fatalf("adults = %g, want 1", out.Scalar)
	}
}

func TestConnectWithMappingValidation(t *testing.T) {
	c := mappingFixture(t)
	// Uncovered target column.
	bad := SchemaMapping{Renames: map[string]string{"pid": "person_id"}}
	if err := c.ConnectWithMapping("census", "people", "epi", "pop", bad); !errors.Is(err, ErrBadMapping) {
		t.Fatalf("got %v", err)
	}
	// Rename to a nonexistent source column.
	bad2 := standardMapping()
	bad2.Renames["age"] = "nope"
	if err := c.ConnectWithMapping("census", "people", "epi", "pop", bad2); !errors.Is(err, ErrBadMapping) {
		t.Fatalf("got %v", err)
	}
	// Nil derived function.
	bad3 := standardMapping()
	bad3.Derived["adult"] = DerivedColumn{Type: engine.TypeBool}
	if err := c.ConnectWithMapping("census", "people", "epi", "pop", bad3); !errors.Is(err, ErrBadMapping) {
		t.Fatalf("got %v", err)
	}
	// Unknown models/ports.
	if err := c.ConnectWithMapping("nope", "people", "epi", "pop", standardMapping()); !errors.Is(err, ErrNoModel) {
		t.Fatalf("got %v", err)
	}
	if err := c.ConnectWithMapping("census", "nope", "epi", "pop", standardMapping()); !errors.Is(err, ErrNoPort) {
		t.Fatalf("got %v", err)
	}
	// Scalar ports rejected.
	d := &Model{
		Name:    "scal",
		Inputs:  []PortSpec{{Name: "i", Kind: KindScalar}},
		Outputs: []PortSpec{{Name: "o", Kind: KindScalar}},
		Run:     func(map[string]Dataset, *rng.Stream) (map[string]Dataset, error) { return nil, nil },
	}
	if err := c.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := c.ConnectWithMapping("scal", "o", "epi", "pop", standardMapping()); !errors.Is(err, ErrBadMapping) {
		t.Fatalf("got %v", err)
	}
	// Duplicate connect on the same input port.
	if err := c.ConnectWithMapping("census", "people", "epi", "pop", standardMapping()); err != nil {
		t.Fatal(err)
	}
	if err := c.ConnectWithMapping("census", "people", "epi", "pop", standardMapping()); !errors.Is(err, ErrDupConnect) {
		t.Fatalf("got %v", err)
	}
}
