// Package composite implements a Splash-style composite-modeling
// platform (§2.2–2.3 of the paper): component simulation models are
// registered with metadata describing their input and output datasets,
// models are loosely coupled by exchanging datasets rather than by
// code-level integration, dataset mismatches between an upstream
// "source" and downstream "target" model are detected automatically
// from the metadata, and the needed data transformations (schema
// mapping and time alignment) are synthesized and applied at run time.
//
// The package also contains the result-caching (RC) optimization for
// stochastic composite models in series (rc.go), reproducing the
// asymptotic-efficiency analysis of §2.3.
package composite

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
	"modeldata/internal/timeseries"
)

// Common errors.
var (
	ErrDupModel   = errors.New("composite: model already registered")
	ErrNoModel    = errors.New("composite: no such model")
	ErrNoPort     = errors.New("composite: no such port")
	ErrMismatch   = errors.New("composite: unresolvable dataset mismatch")
	ErrCycle      = errors.New("composite: model graph has a cycle")
	ErrUnbound    = errors.New("composite: model input port is unbound")
	ErrPayload    = errors.New("composite: dataset payload does not match port kind")
	ErrDupConnect = errors.New("composite: input port already connected")
)

// Kind is the payload kind of a dataset port.
type Kind uint8

// Payload kinds.
const (
	KindScalar Kind = iota
	KindSeries
	KindTable
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindScalar:
		return "scalar"
	case KindSeries:
		return "series"
	case KindTable:
		return "table"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// PortSpec is the metadata a model contributor registers for one input
// or output dataset. Splash uses such metadata for drag-and-drop
// composition and automatic mismatch detection.
type PortSpec struct {
	Name string
	Kind Kind
	// TickDelta is the time-step granularity of a series port; 0 means
	// unspecified. Differing granularities trigger time alignment.
	TickDelta float64
	// Columns lists the column names of a table port; differing
	// column sets trigger schema mapping.
	Columns []string
	// Interp selects the interpolation used when this *input* port
	// needs finer data than the source provides.
	Interp timeseries.InterpMethod
	// Agg selects the aggregation used when this *input* port needs
	// coarser data than the source provides.
	Agg timeseries.AggKind
}

// Dataset is a payload flowing between models.
type Dataset struct {
	Name   string
	Kind   Kind
	Scalar float64
	Series *timeseries.Series
	Table  *engine.Table
}

// ScalarData wraps a scalar into a Dataset.
func ScalarData(name string, v float64) Dataset {
	return Dataset{Name: name, Kind: KindScalar, Scalar: v}
}

// SeriesData wraps a series into a Dataset.
func SeriesData(name string, s *timeseries.Series) Dataset {
	return Dataset{Name: name, Kind: KindSeries, Series: s}
}

// TableData wraps a table into a Dataset.
func TableData(name string, t *engine.Table) Dataset {
	return Dataset{Name: name, Kind: KindTable, Table: t}
}

// RunFunc executes a component model: it consumes the datasets bound to
// its input ports (keyed by port name) and produces one dataset per
// output port.
type RunFunc func(inputs map[string]Dataset, r *rng.Stream) (map[string]Dataset, error)

// Model is a registered component model.
type Model struct {
	Name    string
	Inputs  []PortSpec
	Outputs []PortSpec
	Run     RunFunc
	// Meta carries reusable performance statistics (e.g. the §2.3 cost
	// and variance estimates), keyed by statistic name. Splash stores
	// such numbers in the model's metadata so pilot-run costs amortize
	// across experiments.
	Meta map[string]float64
}

func (m *Model) port(specs []PortSpec, name string) (*PortSpec, error) {
	for i := range specs {
		if strings.EqualFold(specs[i].Name, name) {
			return &specs[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q on model %q", ErrNoPort, name, m.Name)
}

// Transform converts a source dataset to the form a target port
// expects. Transformations are synthesized at Connect time and applied
// on every Monte Carlo repetition — which is why Splash worries about
// their efficiency.
type Transform func(Dataset) (Dataset, error)

// edge is one dataset connection in the composite graph.
type edge struct {
	fromModel, fromPort string
	toModel, toPort     string
	transform           Transform // nil means pass-through
}

// Composite is a DAG of models coupled by dataset exchange.
type Composite struct {
	models map[string]*Model
	order  []string // registration order, for deterministic iteration
	edges  []edge
	// external inputs bound to model input ports: key "model.port".
	inputs map[string]Dataset
}

// NewComposite returns an empty composite model.
func NewComposite() *Composite {
	return &Composite{
		models: make(map[string]*Model),
		inputs: make(map[string]Dataset),
	}
}

// Register adds a model to the composite.
func (c *Composite) Register(m *Model) error {
	key := strings.ToLower(m.Name)
	if _, ok := c.models[key]; ok {
		return fmt.Errorf("%w: %q", ErrDupModel, m.Name)
	}
	if m.Run == nil {
		return fmt.Errorf("composite: model %q has no Run function", m.Name)
	}
	c.models[key] = m
	c.order = append(c.order, key)
	return nil
}

// Bind supplies an external dataset to a model input port.
func (c *Composite) Bind(model, port string, ds Dataset) error {
	m, err := c.model(model)
	if err != nil {
		return err
	}
	spec, err := m.port(m.Inputs, port)
	if err != nil {
		return err
	}
	if ds.Kind != spec.Kind {
		return fmt.Errorf("%w: binding %s to %s port %s.%s", ErrPayload, ds.Kind, spec.Kind, model, port)
	}
	c.inputs[bindKey(model, port)] = ds
	return nil
}

func bindKey(model, port string) string {
	return strings.ToLower(model) + "." + strings.ToLower(port)
}

func (c *Composite) model(name string) (*Model, error) {
	m, ok := c.models[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoModel, name)
	}
	return m, nil
}

// Connect wires an output port of one model to an input port of
// another. Mismatches between the port metadata are detected here and a
// transformation is synthesized:
//
//   - series ports with different tick granularities get a time
//     alignment (aggregation or interpolation per the target's spec);
//   - table ports with different column sets get a schema mapping
//     (projection onto the target's columns; unmapped target columns
//     are an ErrMismatch);
//   - kind disagreements are ErrMismatch.
//
// It returns a description of the synthesized transformation ("" for a
// direct connection).
func (c *Composite) Connect(fromModel, fromPort, toModel, toPort string) (string, error) {
	src, err := c.model(fromModel)
	if err != nil {
		return "", err
	}
	dst, err := c.model(toModel)
	if err != nil {
		return "", err
	}
	srcSpec, err := src.port(src.Outputs, fromPort)
	if err != nil {
		return "", err
	}
	dstSpec, err := dst.port(dst.Inputs, toPort)
	if err != nil {
		return "", err
	}
	for _, e := range c.edges {
		if e.toModel == strings.ToLower(toModel) && e.toPort == strings.ToLower(toPort) {
			return "", fmt.Errorf("%w: %s.%s", ErrDupConnect, toModel, toPort)
		}
	}
	transform, desc, err := synthesizeTransform(srcSpec, dstSpec)
	if err != nil {
		return "", err
	}
	c.edges = append(c.edges, edge{
		fromModel: strings.ToLower(fromModel), fromPort: strings.ToLower(fromPort),
		toModel: strings.ToLower(toModel), toPort: strings.ToLower(toPort),
		transform: transform,
	})
	return desc, nil
}

// synthesizeTransform compiles the graphical transformation spec into
// runtime code (the Clio++/time-aligner step of §2.2).
func synthesizeTransform(src, dst *PortSpec) (Transform, string, error) {
	if src.Kind != dst.Kind {
		return nil, "", fmt.Errorf("%w: %s output vs %s input", ErrMismatch, src.Kind, dst.Kind)
	}
	switch src.Kind {
	case KindSeries:
		if src.TickDelta == 0 || dst.TickDelta == 0 || src.TickDelta == dst.TickDelta { //lint:allow floateq zero is the unset sentinel and equal ticks are set verbatim, both exact by construction
			return nil, "", nil
		}
		dstTick := dst.TickDelta
		method := dst.Interp
		agg := dst.Agg
		desc := "time-alignment: aggregation"
		if dstTick < src.TickDelta {
			desc = "time-alignment: interpolation (" + method.String() + ")"
		}
		return func(ds Dataset) (Dataset, error) {
			if ds.Series == nil {
				return ds, fmt.Errorf("%w: series dataset %q has nil payload", ErrPayload, ds.Name)
			}
			ticks := regrid(ds.Series, dstTick)
			aligned, _, err := timeseries.Align(ds.Series, ticks, method, agg)
			if err != nil {
				return ds, err
			}
			out := ds
			out.Series = aligned
			return out, nil
		}, desc, nil
	case KindTable:
		if len(dst.Columns) == 0 || equalFoldSlices(src.Columns, dst.Columns) {
			return nil, "", nil
		}
		srcSet := make(map[string]bool, len(src.Columns))
		for _, col := range src.Columns {
			srcSet[strings.ToLower(col)] = true
		}
		var missing []string
		for _, col := range dst.Columns {
			if !srcSet[strings.ToLower(col)] {
				missing = append(missing, col)
			}
		}
		if len(missing) > 0 {
			return nil, "", fmt.Errorf("%w: target columns %v not produced by source", ErrMismatch, missing)
		}
		cols := append([]string(nil), dst.Columns...)
		return func(ds Dataset) (Dataset, error) {
			if ds.Table == nil {
				return ds, fmt.Errorf("%w: table dataset %q has nil payload", ErrPayload, ds.Name)
			}
			proj, err := engine.Project(ds.Table, cols...)
			if err != nil {
				return ds, err
			}
			out := ds
			out.Table = proj
			return out, nil
		}, "schema-mapping: project to " + strings.Join(cols, ","), nil
	default:
		return nil, "", nil
	}
}

// regrid builds target ticks at the given spacing across the series
// range.
func regrid(s *timeseries.Series, tick float64) []float64 {
	if s.Len() == 0 {
		return nil
	}
	lo := s.Points[0].T
	hi := s.Points[s.Len()-1].T
	var out []float64
	for t := lo; t <= hi+1e-12; t += tick {
		out = append(out, t)
	}
	return out
}

func equalFoldSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

// topoOrder returns the models in a topological order of the dataset
// graph, or ErrCycle.
func (c *Composite) topoOrder() ([]string, error) {
	indeg := make(map[string]int, len(c.models))
	adj := make(map[string][]string)
	for _, k := range c.order {
		indeg[k] = 0
	}
	for _, e := range c.edges {
		adj[e.fromModel] = append(adj[e.fromModel], e.toModel)
		indeg[e.toModel]++
	}
	// Deterministic Kahn: ready set kept sorted by registration order.
	var ready []string
	for _, k := range c.order {
		if indeg[k] == 0 {
			ready = append(ready, k)
		}
	}
	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		next := adj[n]
		sort.Strings(next)
		for _, m := range next {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(out) != len(c.models) {
		return nil, ErrCycle
	}
	return out, nil
}

// Run executes the composite once: models run in topological order,
// edge transformations convert datasets between ports, and the map of
// every model's outputs (keyed "model.port") is returned.
func (c *Composite) Run(r *rng.Stream) (map[string]Dataset, error) {
	return c.RunWith(r, nil)
}

// RunWith executes the composite once like Run, with overrides taking
// precedence over Bind-supplied external inputs (keys as produced by
// bindKey: "model.port", lower-cased). Overrides do not mutate the
// composite, so concurrent RunWith calls with distinct overrides and
// streams are safe — this is what lets designed experiments evaluate
// design points in parallel.
func (c *Composite) RunWith(r *rng.Stream, overrides map[string]Dataset) (map[string]Dataset, error) {
	order, err := c.topoOrder()
	if err != nil {
		return nil, err
	}
	produced := make(map[string]Dataset) // "model.port" → dataset
	for _, mk := range order {
		m := c.models[mk]
		ins := make(map[string]Dataset, len(m.Inputs))
		for _, spec := range m.Inputs {
			key := bindKey(m.Name, spec.Name)
			if ds, ok := overrides[key]; ok {
				ins[strings.ToLower(spec.Name)] = ds
				continue
			}
			if ds, ok := c.inputs[key]; ok {
				ins[strings.ToLower(spec.Name)] = ds
				continue
			}
			found := false
			for _, e := range c.edges {
				if e.toModel != mk || !strings.EqualFold(e.toPort, spec.Name) {
					continue
				}
				ds, ok := produced[e.fromModel+"."+e.fromPort]
				if !ok {
					return nil, fmt.Errorf("composite: edge source %s.%s produced nothing", e.fromModel, e.fromPort)
				}
				if e.transform != nil {
					ds, err = e.transform(ds)
					if err != nil {
						return nil, fmt.Errorf("composite: transform into %s.%s: %w", m.Name, spec.Name, err)
					}
				}
				ins[strings.ToLower(spec.Name)] = ds
				found = true
				break
			}
			if !found {
				return nil, fmt.Errorf("%w: %s.%s", ErrUnbound, m.Name, spec.Name)
			}
		}
		outs, err := m.Run(ins, r.Split())
		if err != nil {
			return nil, fmt.Errorf("composite: model %q: %w", m.Name, err)
		}
		for _, spec := range m.Outputs {
			ds, ok := outs[strings.ToLower(spec.Name)]
			if !ok {
				// Try the exact-case key as a convenience.
				ds, ok = outs[spec.Name]
			}
			if !ok {
				return nil, fmt.Errorf("composite: model %q did not produce output %q", m.Name, spec.Name)
			}
			produced[mk+"."+strings.ToLower(spec.Name)] = ds
		}
	}
	return produced, nil
}

// Output fetches one dataset from a Run result.
func Output(results map[string]Dataset, model, port string) (Dataset, error) {
	ds, ok := results[bindKey(model, port)]
	if !ok {
		return Dataset{}, fmt.Errorf("%w: %s.%s", ErrNoPort, model, port)
	}
	return ds, nil
}
