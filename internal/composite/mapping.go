package composite

import (
	"errors"
	"fmt"
	"strings"

	"modeldata/internal/engine"
)

// §2.2: "To specify schema transformations, Splash uses Clio++, an
// extension of the Clio schema mapping tool to allow users to
// graphically define a schema mapping." The plain Connect call handles
// the identity case (projection onto matching column names); this file
// adds the general mapping: target columns drawn from renamed source
// columns or computed from whole source rows, compiled once into a
// runtime Transform.

// Mapping errors.
var ErrBadMapping = errors.New("composite: invalid schema mapping")

// SchemaMapping declares how a target table port's columns are
// produced from a source table port.
type SchemaMapping struct {
	// Renames maps target column name → source column name. Target
	// columns absent from both Renames and Derived must exist in the
	// source under their own name.
	Renames map[string]string
	// Derived maps target column name → a computed column: a function
	// of the full source row plus the type of the produced value.
	Derived map[string]DerivedColumn
}

// DerivedColumn computes one target column value from a source row.
type DerivedColumn struct {
	Type engine.Type
	Fn   func(src engine.Row) engine.Value
}

// ConnectWithMapping wires a table output port to a table input port
// through an explicit Clio-style mapping. The mapping is validated
// against the port metadata at connect time — unknown source columns
// or uncovered target columns are ErrBadMapping — and compiled into the
// edge's Transform.
func (c *Composite) ConnectWithMapping(fromModel, fromPort, toModel, toPort string, mapping SchemaMapping) error {
	src, err := c.model(fromModel)
	if err != nil {
		return err
	}
	dst, err := c.model(toModel)
	if err != nil {
		return err
	}
	srcSpec, err := src.port(src.Outputs, fromPort)
	if err != nil {
		return err
	}
	dstSpec, err := dst.port(dst.Inputs, toPort)
	if err != nil {
		return err
	}
	if srcSpec.Kind != KindTable || dstSpec.Kind != KindTable {
		return fmt.Errorf("%w: schema mapping requires table ports (%s → %s)",
			ErrBadMapping, srcSpec.Kind, dstSpec.Kind)
	}
	for _, e := range c.edges {
		if e.toModel == strings.ToLower(toModel) && e.toPort == strings.ToLower(toPort) {
			return fmt.Errorf("%w: %s.%s", ErrDupConnect, toModel, toPort)
		}
	}
	srcCols := make(map[string]bool, len(srcSpec.Columns))
	for _, col := range srcSpec.Columns {
		srcCols[strings.ToLower(col)] = true
	}
	// Validate coverage of every target column and build the plan.
	type colPlan struct {
		name    string
		srcName string // "" for derived
		derived *DerivedColumn
	}
	var plan []colPlan
	for _, target := range dstSpec.Columns {
		key := target
		if d, ok := mapping.Derived[target]; ok {
			if d.Fn == nil {
				return fmt.Errorf("%w: derived column %q has nil Fn", ErrBadMapping, target)
			}
			d := d
			plan = append(plan, colPlan{name: target, derived: &d})
			continue
		}
		srcName := key
		if renamed, ok := mapping.Renames[target]; ok {
			srcName = renamed
		}
		if !srcCols[strings.ToLower(srcName)] {
			return fmt.Errorf("%w: target column %q needs source column %q, not produced by %s.%s",
				ErrBadMapping, target, srcName, fromModel, fromPort)
		}
		plan = append(plan, colPlan{name: target, srcName: srcName})
	}
	transform := func(ds Dataset) (Dataset, error) {
		if ds.Table == nil {
			return ds, fmt.Errorf("%w: table dataset %q has nil payload", ErrPayload, ds.Name)
		}
		srcTable := ds.Table
		schema := make(engine.Schema, len(plan))
		srcIdx := make([]int, len(plan))
		for i, p := range plan {
			if p.derived != nil {
				schema[i] = engine.Column{Name: p.name, Type: p.derived.Type}
				srcIdx[i] = -1
				continue
			}
			j, err := srcTable.ColIndex(p.srcName)
			if err != nil {
				return ds, err
			}
			schema[i] = engine.Column{Name: p.name, Type: srcTable.Schema[j].Type}
			srcIdx[i] = j
		}
		out, err := engine.NewTable(srcTable.Name, schema)
		if err != nil {
			return ds, err
		}
		for _, row := range srcTable.Rows {
			nr := make(engine.Row, len(plan))
			for i, p := range plan {
				if p.derived != nil {
					nr[i] = p.derived.Fn(row)
				} else {
					nr[i] = row[srcIdx[i]]
				}
			}
			if err := out.Insert(nr); err != nil {
				return ds, err
			}
		}
		res := ds
		res.Table = out
		return res, nil
	}
	c.edges = append(c.edges, edge{
		fromModel: strings.ToLower(fromModel), fromPort: strings.ToLower(fromPort),
		toModel: strings.ToLower(toModel), toPort: strings.ToLower(toPort),
		transform: transform,
	})
	return nil
}
