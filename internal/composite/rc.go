package composite

import (
	"errors"
	"fmt"
	"math"

	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// This file implements the result-caching (RC) technique of §2.3 of the
// paper ([25]) for two stochastic models in series: M1 produces a
// random output Y1 that feeds M2, which produces the real-valued output
// Y2 whose expectation θ = E[Y2] is being estimated. For n replications
// of M2, only m_n = ⌈αn⌉ replications of M1 execute; their cached
// outputs are cycled through in a fixed order (a stratified reuse that
// keeps estimator variance down). The asymptotic variance of the
// budget-c estimator is g(α), and efficiency 1/g(α) is maximized at α*.

// ErrBadAlpha is returned for a replication fraction outside (0, 1].
var ErrBadAlpha = errors.New("composite: replication fraction must be in (0, 1]")

// TwoStage is a composite model M = M2 ∘ M1 with both components
// stochastic. C1 and C2 are the expected per-run costs c₁ and c₂ in
// arbitrary work units (the cost of transforming and storing M1's
// output is folded into C1, as in the paper).
type TwoStage struct {
	M1 func(r *rng.Stream) float64
	M2 func(y1 float64, r *rng.Stream) float64
	C1 float64
	C2 float64
}

// RCRun reports one result-caching execution.
type RCRun struct {
	Samples []float64 // the n outputs of M2
	Theta   float64   // θ̂ = mean of Samples
	M1Runs  int       // m_n
	M2Runs  int       // n
	Cost    float64   // m_n·c₁ + n·c₂
}

// RunRC executes the RC strategy: m_n = ⌈αn⌉ runs of M1 are cached and
// cycled through in fixed order as inputs to n runs of M2.
func (ts TwoStage) RunRC(n int, alpha float64, seed uint64) (RCRun, error) {
	if n <= 0 {
		return RCRun{}, fmt.Errorf("composite: RC n=%d", n)
	}
	if alpha <= 0 || alpha > 1 {
		return RCRun{}, fmt.Errorf("%w: α=%g", ErrBadAlpha, alpha)
	}
	r := rng.New(seed)
	mn := int(math.Ceil(alpha * float64(n)))
	if mn > n {
		mn = n
	}
	cache := make([]float64, mn)
	for i := range cache {
		cache[i] = ts.M1(r.Split())
	}
	samples := make([]float64, n)
	for i := 0; i < n; i++ {
		samples[i] = ts.M2(cache[i%mn], r.Split())
	}
	return RCRun{
		Samples: samples,
		Theta:   stats.Mean(samples),
		M1Runs:  mn,
		M2Runs:  n,
		Cost:    float64(mn)*ts.C1 + float64(n)*ts.C2,
	}, nil
}

// RunBudgeted executes RC under a computing budget c: the number of M2
// outputs is N(c) = sup{n ≥ 0 : C_n ≤ c} where C_n = ⌈αn⌉·c₁ + n·c₂,
// and the returned estimate is U(c) = θ̂_{N(c)}.
func (ts TwoStage) RunBudgeted(budget, alpha float64, seed uint64) (RCRun, error) {
	if alpha <= 0 || alpha > 1 {
		return RCRun{}, fmt.Errorf("%w: α=%g", ErrBadAlpha, alpha)
	}
	n := maxNForBudget(budget, alpha, ts.C1, ts.C2)
	if n <= 0 {
		return RCRun{}, fmt.Errorf("composite: budget %g cannot afford one replication", budget)
	}
	return ts.RunRC(n, alpha, seed)
}

// maxNForBudget computes N(c) by direct search on the (monotone) cost.
func maxNForBudget(budget, alpha, c1, c2 float64) int {
	costAt := func(n int) float64 {
		return math.Ceil(alpha*float64(n))*c1 + float64(n)*c2
	}
	// Exponential then binary search.
	if costAt(1) > budget {
		return 0
	}
	hi := 1
	for costAt(hi) <= budget {
		hi *= 2
	}
	lo := hi / 2
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if costAt(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Statistics are the §2.3 quantities 𝒮 = (c₁, c₂, V₁, V₂): expected
// costs of one M1 and one M2 run, the variance of an M2 output, and the
// covariance of two M2 outputs sharing one M1 input.
type Statistics struct {
	C1, C2, V1, V2 float64
}

func (s Statistics) String() string {
	return fmt.Sprintf("c1=%.4g c2=%.4g V1=%.4g V2=%.4g", s.C1, s.C2, s.V1, s.V2)
}

// GAlpha evaluates the paper's asymptotic variance
//
//	g(α) = (αc₁ + c₂)·(V₁ + [2r_α − α·r_α(r_α+1)]·V₂),  r_α = ⌊1/α⌋.
func GAlpha(alpha float64, s Statistics) float64 {
	ra := math.Floor(1 / alpha)
	return (alpha*s.C1 + s.C2) * (s.V1 + (2*ra-alpha*ra*(ra+1))*s.V2)
}

// GTilde evaluates the smooth approximation
// g̃(α) = (αc₁ + c₂)(V₁ + (1/α − 1)V₂) obtained by replacing r_α with
// 1/α.
func GTilde(alpha float64, s Statistics) float64 {
	return (alpha*s.C1 + s.C2) * (s.V1 + (1/alpha-1)*s.V2)
}

// OptimalAlpha returns the efficiency-maximizing replication fraction
//
//	α* = sqrt((c₂/c₁) / (V₁/V₂ − 1)),
//
// truncated into [minAlpha, 1]. Degenerate cases follow §2.3: V₂ ≤ 0
// (M2 insensitive to M1 beyond noise) gives the minimum α (simulate M1
// as rarely as allowed); V₁ ≈ V₂ (M2 a deterministic transformer) gives
// α = 1.
func OptimalAlpha(s Statistics, minAlpha float64) float64 {
	if minAlpha <= 0 {
		minAlpha = 1e-6
	}
	if s.V2 <= 0 {
		return minAlpha
	}
	ratio := s.V1/s.V2 - 1
	if ratio <= 0 {
		return 1
	}
	a := math.Sqrt((s.C2 / s.C1) / ratio)
	if a < minAlpha {
		return minAlpha
	}
	if a > 1 {
		return 1
	}
	return a
}

// PilotEstimate estimates 𝒮 with k pilot replications: each draws one
// Y1 and two conditionally independent Y2's, giving V₂ as the sample
// covariance of the pairs and V₁ as the variance over all Y2's. Costs
// are taken from the TwoStage's declared work units (a composite
// platform would store measured costs in the model metadata and refine
// them across production runs).
func (ts TwoStage) PilotEstimate(k int, seed uint64) (Statistics, error) {
	if k < 2 {
		return Statistics{}, fmt.Errorf("composite: pilot needs k ≥ 2, got %d", k)
	}
	r := rng.New(seed)
	first := make([]float64, k)
	second := make([]float64, k)
	all := make([]float64, 0, 2*k)
	for i := 0; i < k; i++ {
		y1 := ts.M1(r.Split())
		a := ts.M2(y1, r.Split())
		b := ts.M2(y1, r.Split())
		first[i], second[i] = a, b
		all = append(all, a, b)
	}
	v2 := stats.Covariance(first, second)
	if v2 < 0 {
		v2 = 0 // the paper assumes V₂ ≥ 0, "as is usually the case"
	}
	return Statistics{
		C1: ts.C1,
		C2: ts.C2,
		V1: stats.Variance(all),
		V2: v2,
	}, nil
}
