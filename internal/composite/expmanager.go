package composite

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// This file implements the experiment-management capability of §4.2:
// Splash "uses metadata to provide an experimenter with a unified view
// of composite model parameters ... provides a facility for specifying
// experimental designs as well as runtime support for setting parameter
// values by automatically synthesizing, via a templating mechanism, the
// input files that each component model expects."
//
// Here, a Parameter is a scalar input port of some component model;
// the Manager binds each design point's values to those ports, runs
// the composite once per design point, and collects a scalar response.
// SynthesizeInput renders ${model.port} placeholders in a text template
// — the input-file synthesis step.

// Experiment-manager errors.
var (
	ErrNoParams  = errors.New("composite: experiment has no parameters")
	ErrBadPoint  = errors.New("composite: design point arity does not match parameters")
	ErrBadBounds = errors.New("composite: parameter bounds must satisfy lo < hi")
	ErrNotScalar = errors.New("composite: experiment parameters must be scalar input ports")
)

// Parameter is one entry of the unified parameter view: a scalar input
// port of a component model with its feasible range.
type Parameter struct {
	Model, Port string
	Lo, Hi      float64
}

// Manager drives designed experiments over a composite model.
type Manager struct {
	Comp   *Composite
	Params []Parameter
	// Output names the model and port whose scalar output is the
	// experiment response.
	OutputModel, OutputPort string
}

// NewManager wraps a composite model.
func NewManager(c *Composite) *Manager { return &Manager{Comp: c} }

// AddParameter registers a model's scalar input port as an experiment
// parameter with range [lo, hi].
func (m *Manager) AddParameter(model, port string, lo, hi float64) error {
	md, err := m.Comp.model(model)
	if err != nil {
		return err
	}
	spec, err := md.port(md.Inputs, port)
	if err != nil {
		return err
	}
	if spec.Kind != KindScalar {
		return fmt.Errorf("%w: %s.%s is %s", ErrNotScalar, model, port, spec.Kind)
	}
	if lo >= hi {
		return fmt.Errorf("%w: [%g, %g] for %s.%s", ErrBadBounds, lo, hi, model, port)
	}
	m.Params = append(m.Params, Parameter{Model: model, Port: port, Lo: lo, Hi: hi})
	return nil
}

// SetOutput selects the response: a scalar output port.
func (m *Manager) SetOutput(model, port string) error {
	md, err := m.Comp.model(model)
	if err != nil {
		return err
	}
	spec, err := md.port(md.Outputs, port)
	if err != nil {
		return err
	}
	if spec.Kind != KindScalar {
		return fmt.Errorf("%w: output %s.%s is %s", ErrNotScalar, model, port, spec.Kind)
	}
	m.OutputModel, m.OutputPort = model, port
	return nil
}

// scale maps a coded level in [−1, +1] onto a parameter's natural
// range.
func (p Parameter) scale(coded float64) float64 {
	return p.Lo + (coded+1)/2*(p.Hi-p.Lo)
}

// RunPoint executes the composite once with the given natural-unit
// parameter values and returns the scalar response. The parameter
// bindings are passed as run-scoped overrides rather than written into
// the composite, so concurrent RunPoint calls with distinct streams
// are safe.
func (m *Manager) RunPoint(values []float64, r *rng.Stream) (float64, error) {
	if len(m.Params) == 0 {
		return 0, ErrNoParams
	}
	if len(values) != len(m.Params) {
		return 0, fmt.Errorf("%w: %d values for %d parameters", ErrBadPoint, len(values), len(m.Params))
	}
	if m.OutputModel == "" {
		return 0, fmt.Errorf("%w: no output selected", ErrNoPort)
	}
	overrides := make(map[string]Dataset, len(m.Params))
	for i, p := range m.Params {
		md, err := m.Comp.model(p.Model)
		if err != nil {
			return 0, err
		}
		if _, err := md.port(md.Inputs, p.Port); err != nil {
			return 0, err
		}
		overrides[bindKey(p.Model, p.Port)] = ScalarData(p.Port, values[i])
	}
	results, err := m.Comp.RunWith(r, overrides)
	if err != nil {
		return 0, err
	}
	out, err := Output(results, m.OutputModel, m.OutputPort)
	if err != nil {
		return 0, err
	}
	return out.Scalar, nil
}

// RunDesign executes one composite run per design row on the default
// worker pool. See RunDesignCtx.
func (m *Manager) RunDesign(coded [][]float64, seed uint64) ([]float64, error) {
	return m.RunDesignCtx(context.Background(), coded, seed, 0)
}

// RunDesignCtx executes one composite run per design row. Rows are
// coded levels (±1 factorial levels or any values in [−1, +1], e.g.
// from a scaled Latin hypercube), mapped onto each parameter's natural
// range. Design points fan out over the parallel runtime: each run
// gets an independent random stream split from seed in row order, so
// responses are bit-identical at any worker count. Component model Run
// functions must be safe for concurrent calls with distinct streams.
func (m *Manager) RunDesignCtx(ctx context.Context, coded [][]float64, seed uint64, workers int) ([]float64, error) {
	for i, row := range coded {
		if len(row) != len(m.Params) {
			return nil, fmt.Errorf("%w: row %d has %d values for %d parameters",
				ErrBadPoint, i, len(row), len(m.Params))
		}
	}
	out := make([]float64, len(coded))
	err := parallel.ForStreams(ctx, rng.New(seed), len(coded), parallel.Options{Workers: workers},
		func(i int, r *rng.Stream) error {
			natural := make([]float64, len(coded[i]))
			for j, c := range coded[i] {
				natural[j] = m.Params[j].scale(c)
			}
			v, err := m.RunPoint(natural, r)
			if err != nil {
				return fmt.Errorf("composite: design row %d: %w", i, err)
			}
			out[i] = v
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SynthesizeInput renders a component model's input-file template:
// every ${model.port} placeholder is replaced with the parameter value
// from the (natural-unit) design point. Unknown placeholders are an
// error — they indicate a metadata mismatch.
func (m *Manager) SynthesizeInput(tmpl string, values []float64) (string, error) {
	if len(values) != len(m.Params) {
		return "", fmt.Errorf("%w: %d values for %d parameters", ErrBadPoint, len(values), len(m.Params))
	}
	lookup := make(map[string]float64, len(m.Params))
	for i, p := range m.Params {
		lookup[strings.ToLower(p.Model+"."+p.Port)] = values[i]
	}
	var b strings.Builder
	for i := 0; i < len(tmpl); {
		j := strings.Index(tmpl[i:], "${")
		if j < 0 {
			b.WriteString(tmpl[i:])
			break
		}
		b.WriteString(tmpl[i : i+j])
		end := strings.Index(tmpl[i+j:], "}")
		if end < 0 {
			return "", fmt.Errorf("composite: unterminated placeholder at offset %d", i+j)
		}
		key := strings.ToLower(tmpl[i+j+2 : i+j+end])
		v, ok := lookup[key]
		if !ok {
			return "", fmt.Errorf("composite: unknown parameter placeholder %q", key)
		}
		fmt.Fprintf(&b, "%g", v)
		i += j + end + 1
	}
	return b.String(), nil
}
