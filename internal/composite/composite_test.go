package composite

import (
	"errors"
	"math"
	"strings"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
	"modeldata/internal/timeseries"
)

// demandModel emits a fine-grained series (tick 1) of demand values.
func demandModel() *Model {
	return &Model{
		Name:    "demand",
		Outputs: []PortSpec{{Name: "arrivals", Kind: KindSeries, TickDelta: 1}},
		Run: func(inputs map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			ts := make([]float64, 100)
			vs := make([]float64, 100)
			for i := range ts {
				ts[i] = float64(i)
				vs[i] = 10 + r.Normal(0, 1)
			}
			s, err := timeseries.FromSlices("arrivals", ts, vs)
			if err != nil {
				return nil, err
			}
			return map[string]Dataset{"arrivals": SeriesData("arrivals", s)}, nil
		},
	}
}

// queueModel consumes a coarse series (tick 10) and emits the mean as a
// scalar.
func queueModel() *Model {
	return &Model{
		Name: "queue",
		Inputs: []PortSpec{{
			Name: "load", Kind: KindSeries, TickDelta: 10, Agg: timeseries.AggMean,
		}},
		Outputs: []PortSpec{{Name: "wait", Kind: KindScalar}},
		Run: func(inputs map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			s := inputs["load"].Series
			sum := 0.0
			for _, p := range s.Points {
				sum += p.V
			}
			return map[string]Dataset{"wait": ScalarData("wait", sum/float64(s.Len()))}, nil
		},
	}
}

func TestCompositeSeriesAlignment(t *testing.T) {
	c := NewComposite()
	if err := c.Register(demandModel()); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(queueModel()); err != nil {
		t.Fatal(err)
	}
	desc, err := c.Connect("demand", "arrivals", "queue", "load")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "time-alignment") {
		t.Fatalf("transform desc = %q", desc)
	}
	results, err := c.Run(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Output(results, "queue", "wait")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Scalar-10) > 1 {
		t.Fatalf("mean wait = %g, want ≈ 10", out.Scalar)
	}
}

func TestCompositeSchemaMapping(t *testing.T) {
	producer := &Model{
		Name: "census",
		Outputs: []PortSpec{{
			Name: "people", Kind: KindTable,
			Columns: []string{"pid", "age", "income"},
		}},
		Run: func(_ map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			tbl := engine.MustNewTable("people", engine.Schema{
				{Name: "pid", Type: engine.TypeInt},
				{Name: "age", Type: engine.TypeInt},
				{Name: "income", Type: engine.TypeFloat},
			})
			tbl.MustInsert(engine.Int(1), engine.Int(30), engine.Float(100))
			return map[string]Dataset{"people": TableData("people", tbl)}, nil
		},
	}
	consumer := &Model{
		Name: "epi",
		Inputs: []PortSpec{{
			Name: "pop", Kind: KindTable, Columns: []string{"pid", "age"},
		}},
		Outputs: []PortSpec{{Name: "n", Kind: KindScalar}},
		Run: func(inputs map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			tbl := inputs["pop"].Table
			if len(tbl.Schema) != 2 {
				return nil, errors.New("schema mapping not applied")
			}
			return map[string]Dataset{"n": ScalarData("n", float64(tbl.Len()))}, nil
		},
	}
	c := NewComposite()
	if err := c.Register(producer); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(consumer); err != nil {
		t.Fatal(err)
	}
	desc, err := c.Connect("census", "people", "epi", "pop")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "schema-mapping") {
		t.Fatalf("desc = %q", desc)
	}
	results, err := c.Run(rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Output(results, "epi", "n")
	if out.Scalar != 1 {
		t.Fatalf("n = %g", out.Scalar)
	}
}

func TestConnectMismatchErrors(t *testing.T) {
	a := &Model{
		Name:    "a",
		Outputs: []PortSpec{{Name: "o", Kind: KindScalar}},
		Run:     func(map[string]Dataset, *rng.Stream) (map[string]Dataset, error) { return nil, nil },
	}
	b := &Model{
		Name:   "b",
		Inputs: []PortSpec{{Name: "i", Kind: KindSeries}},
		Run:    func(map[string]Dataset, *rng.Stream) (map[string]Dataset, error) { return nil, nil },
	}
	c := NewComposite()
	if err := c.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect("a", "o", "b", "i"); !errors.Is(err, ErrMismatch) {
		t.Fatalf("kind mismatch: got %v", err)
	}
	if _, err := c.Connect("a", "nope", "b", "i"); !errors.Is(err, ErrNoPort) {
		t.Fatalf("bad port: got %v", err)
	}
	if _, err := c.Connect("zzz", "o", "b", "i"); !errors.Is(err, ErrNoModel) {
		t.Fatalf("bad model: got %v", err)
	}
}

func TestConnectUnmappableColumns(t *testing.T) {
	src := &Model{
		Name:    "s",
		Outputs: []PortSpec{{Name: "o", Kind: KindTable, Columns: []string{"x"}}},
		Run:     func(map[string]Dataset, *rng.Stream) (map[string]Dataset, error) { return nil, nil },
	}
	dst := &Model{
		Name:   "d",
		Inputs: []PortSpec{{Name: "i", Kind: KindTable, Columns: []string{"x", "y"}}},
		Run:    func(map[string]Dataset, *rng.Stream) (map[string]Dataset, error) { return nil, nil },
	}
	c := NewComposite()
	if err := c.Register(src); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect("s", "o", "d", "i"); !errors.Is(err, ErrMismatch) {
		t.Fatalf("got %v", err)
	}
}

func TestRegisterAndBindErrors(t *testing.T) {
	c := NewComposite()
	m := demandModel()
	if err := c.Register(m); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(demandModel()); !errors.Is(err, ErrDupModel) {
		t.Fatalf("got %v", err)
	}
	if err := c.Register(&Model{Name: "norun"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	if err := c.Bind("demand", "nope", ScalarData("x", 1)); !errors.Is(err, ErrNoPort) {
		t.Fatalf("got %v", err)
	}
	if err := c.Bind("missing", "x", ScalarData("x", 1)); !errors.Is(err, ErrNoModel) {
		t.Fatalf("got %v", err)
	}
}

func TestBindKindCheckAndExternalInput(t *testing.T) {
	doubler := &Model{
		Name:    "doubler",
		Inputs:  []PortSpec{{Name: "x", Kind: KindScalar}},
		Outputs: []PortSpec{{Name: "y", Kind: KindScalar}},
		Run: func(inputs map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			return map[string]Dataset{"y": ScalarData("y", 2*inputs["x"].Scalar)}, nil
		},
	}
	c := NewComposite()
	if err := c.Register(doubler); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind("doubler", "x", SeriesData("x", nil)); !errors.Is(err, ErrPayload) {
		t.Fatalf("got %v", err)
	}
	if err := c.Bind("doubler", "x", ScalarData("x", 21)); err != nil {
		t.Fatal(err)
	}
	results, err := c.Run(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Output(results, "doubler", "y")
	if out.Scalar != 42 {
		t.Fatalf("y = %g", out.Scalar)
	}
}

func TestUnboundInput(t *testing.T) {
	c := NewComposite()
	if err := c.Register(queueModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(rng.New(1)); !errors.Is(err, ErrUnbound) {
		t.Fatalf("got %v", err)
	}
}

func TestCycleDetection(t *testing.T) {
	mk := func(name string) *Model {
		return &Model{
			Name:    name,
			Inputs:  []PortSpec{{Name: "i", Kind: KindScalar}},
			Outputs: []PortSpec{{Name: "o", Kind: KindScalar}},
			Run: func(map[string]Dataset, *rng.Stream) (map[string]Dataset, error) {
				return map[string]Dataset{"o": ScalarData("o", 0)}, nil
			},
		}
	}
	c := NewComposite()
	if err := c.Register(mk("m1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(mk("m2")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect("m1", "o", "m2", "i"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect("m2", "o", "m1", "i"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(rng.New(1)); !errors.Is(err, ErrCycle) {
		t.Fatalf("got %v", err)
	}
}

func TestDuplicateConnect(t *testing.T) {
	c := NewComposite()
	if err := c.Register(demandModel()); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(queueModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect("demand", "arrivals", "queue", "load"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect("demand", "arrivals", "queue", "load"); !errors.Is(err, ErrDupConnect) {
		t.Fatalf("got %v", err)
	}
}
