package composite

import (
	"fmt"

	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// §2.3 closes with the observation that a composite-modeling platform
// is oriented toward model re-use: performance statistics 𝒮 =
// (c₁, c₂, V₁, V₂) can live in the model metadata, be seeded by pilot
// runs, and then "as the component models are used in production runs,
// their behavior can be observed and used to continually refine the
// statistics in 𝒮, and hence to continually improve performance" —
// the analogue of refreshing relational catalog statistics. AdaptiveRC
// implements that loop: each production batch runs at the α* implied
// by the current statistics, observes fresh (Y1, Y2) behaviour, and
// folds it into 𝒮 before the next batch.

// AdaptiveRC is a result-caching runner that refines its statistics
// across batches.
type AdaptiveRC struct {
	Model TwoStage
	// Stats is the current estimate of 𝒮; seed it with PilotEstimate
	// or stored metadata.
	Stats Statistics
	// MinAlpha truncates α* away from zero (the 1/n truncation of the
	// paper). Default 0.01.
	MinAlpha float64
	// pilotV1 and pilotV2 remember the seed estimates (weighted as one
	// pseudo-batch); sumV1/sumV2 accumulate the per-batch refinement
	// estimates.
	pilotV1, pilotV2 float64
	sumV1            float64
	sumV2            float64
	batchesRun       int
}

// NewAdaptiveRC seeds the runner with pilot statistics.
func NewAdaptiveRC(model TwoStage, pilotK int, seed uint64) (*AdaptiveRC, error) {
	s, err := model.PilotEstimate(pilotK, seed)
	if err != nil {
		return nil, err
	}
	return &AdaptiveRC{
		Model: model, Stats: s, MinAlpha: 0.01,
		pilotV1: s.V1, pilotV2: s.V2,
	}, nil
}

// Alpha returns the currently optimal replication fraction.
func (a *AdaptiveRC) Alpha() float64 {
	minA := a.MinAlpha
	if minA <= 0 {
		minA = 0.01
	}
	return OptimalAlpha(a.Stats, minA)
}

// BatchResult reports one production batch.
type BatchResult struct {
	RCRun
	AlphaUsed float64
	// StatsAfter is 𝒮 after folding in the batch's observations.
	StatsAfter Statistics
}

// RunBatch executes n replications of M2 at the current α*, then
// refines V₁ and V₂ from paired observations gathered alongside the
// batch (one extra M2 run per cached M1 output gives the shared-input
// covariance sample).
func (a *AdaptiveRC) RunBatch(n int, seed uint64) (BatchResult, error) {
	if n < 2 {
		return BatchResult{}, fmt.Errorf("composite: adaptive batch needs n ≥ 2, got %d", n)
	}
	alpha := a.Alpha()
	run, err := a.Model.RunRC(n, alpha, seed)
	if err != nil {
		return BatchResult{}, err
	}
	// Observation pass: fresh paired samples refine V1/V2 (cost folded
	// into production in a real platform; explicit here).
	r := rng.New(seed + 0x9e3779b97f4a7c15)
	const refinePairs = 16
	var first, second []float64
	for i := 0; i < refinePairs; i++ {
		y1 := a.Model.M1(r.Split())
		first = append(first, a.Model.M2(y1, r.Split()))
		second = append(second, a.Model.M2(y1, r.Split()))
	}
	v2 := stats.Covariance(first, second)
	if v2 < 0 {
		v2 = 0
	}
	all := append(append([]float64(nil), first...), second...)
	v1 := stats.Variance(all)
	// Running average over the pilot (one pseudo-batch) plus every
	// production batch, so each run sharpens 𝒮 — the paper's
	// catalog-statistics analogy.
	a.sumV1 += v1
	a.sumV2 += v2
	a.batchesRun++
	weight := float64(a.batchesRun)
	a.Stats.V1 = (a.pilotV1 + a.sumV1) / (1 + weight)
	a.Stats.V2 = (a.pilotV2 + a.sumV2) / (1 + weight)
	return BatchResult{RCRun: run, AlphaUsed: alpha, StatsAfter: a.Stats}, nil
}
