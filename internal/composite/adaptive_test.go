package composite

import (
	"math"
	"testing"

	"modeldata/internal/rng"
)

func TestAdaptiveRCConvergesToTrueAlpha(t *testing.T) {
	// Y1 ~ N(0,1), Y2 = Y1 + N(0,1): V1 = 2, V2 = 1, so with c1=20,
	// c2=1 the true α* = sqrt((1/20)/(2/1−1)) ≈ 0.2236.
	ts := linkedStage(0, 1, 1, 20, 1)
	trueAlpha := OptimalAlpha(Statistics{C1: 20, C2: 1, V1: 2, V2: 1}, 0.01)

	// Deliberately tiny pilot: 𝒮 starts noisy.
	a, err := NewAdaptiveRC(ts, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	parent := rng.New(10)
	var lastAlpha float64
	for batch := 0; batch < 40; batch++ {
		res, err := a.RunBatch(50, parent.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		lastAlpha = res.AlphaUsed
		if res.M2Runs != 50 {
			t.Fatalf("batch ran %d M2 replications", res.M2Runs)
		}
	}
	if math.Abs(lastAlpha-trueAlpha) > 0.08 {
		t.Fatalf("adaptive α = %g after refinement, want ≈ %g", lastAlpha, trueAlpha)
	}
	// Refined variances should be near truth.
	if math.Abs(a.Stats.V1-2) > 0.4 || math.Abs(a.Stats.V2-1) > 0.3 {
		t.Fatalf("refined stats %v, want V1≈2 V2≈1", a.Stats)
	}
}

func TestAdaptiveRCBatchValidation(t *testing.T) {
	ts := linkedStage(0, 1, 1, 1, 1)
	a, err := NewAdaptiveRC(ts, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunBatch(1, 2); err == nil {
		t.Fatal("n=1 batch accepted")
	}
	if _, err := NewAdaptiveRC(ts, 1, 1); err == nil {
		t.Fatal("pilot k=1 accepted")
	}
}

func TestAdaptiveRCAlphaBounds(t *testing.T) {
	ts := linkedStage(0, 1, 1, 1, 1)
	a, err := NewAdaptiveRC(ts, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	al := a.Alpha()
	if al <= 0 || al > 1 {
		t.Fatalf("α = %g out of (0, 1]", al)
	}
	// Zero MinAlpha falls back to the default truncation.
	a.MinAlpha = 0
	a.Stats.V2 = 0
	if got := a.Alpha(); got != 0.01 {
		t.Fatalf("degenerate α = %g, want 0.01 floor", got)
	}
}
