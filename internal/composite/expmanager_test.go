package composite

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/doe"
	"modeldata/internal/rng"
)

// responseComposite builds a two-model composite whose final scalar
// output is a known function of three experiment parameters:
// upstream computes u = 2a − b (+ small noise), downstream outputs
// y = u + 3c.
func responseComposite(t *testing.T, noise float64) *Composite {
	t.Helper()
	up := &Model{
		Name: "upstream",
		Inputs: []PortSpec{
			{Name: "a", Kind: KindScalar},
			{Name: "b", Kind: KindScalar},
		},
		Outputs: []PortSpec{{Name: "u", Kind: KindScalar}},
		Run: func(in map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			u := 2*in["a"].Scalar - in["b"].Scalar + r.Normal(0, noise)
			return map[string]Dataset{"u": ScalarData("u", u)}, nil
		},
	}
	down := &Model{
		Name: "downstream",
		Inputs: []PortSpec{
			{Name: "u", Kind: KindScalar},
			{Name: "c", Kind: KindScalar},
		},
		Outputs: []PortSpec{{Name: "y", Kind: KindScalar}},
		Run: func(in map[string]Dataset, r *rng.Stream) (map[string]Dataset, error) {
			return map[string]Dataset{"y": ScalarData("y", in["u"].Scalar+3*in["c"].Scalar)}, nil
		},
	}
	c := NewComposite()
	if err := c.Register(up); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(down); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect("upstream", "u", "downstream", "u"); err != nil {
		t.Fatal(err)
	}
	return c
}

func managerFixture(t *testing.T, noise float64) *Manager {
	t.Helper()
	m := NewManager(responseComposite(t, noise))
	if err := m.AddParameter("upstream", "a", -1, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddParameter("upstream", "b", -1, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddParameter("downstream", "c", -1, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetOutput("downstream", "y"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerRunPoint(t *testing.T) {
	m := managerFixture(t, 0)
	y, err := m.RunPoint([]float64{1, 1, 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-4) > 1e-12 { // 2·1 − 1 + 3·1
		t.Fatalf("y = %g, want 4", y)
	}
}

func TestManagerRunDesignMainEffects(t *testing.T) {
	// §4.2 end-to-end: run a factorial design over the composite's
	// unified parameter view and recover the main effects.
	m := managerFixture(t, 0.01)
	design, err := doe.FullFactorial(3)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.RunDesign(design.Points(), 7)
	if err != nil {
		t.Fatal(err)
	}
	effects, err := doe.MainEffects(design, y)
	if err != nil {
		t.Fatal(err)
	}
	// Effects (high − low) = 2β on the ±1 scale: 4, −2, 6.
	want := []float64{4, -2, 6}
	for j, e := range effects {
		if math.Abs(e.Effect-want[j]) > 0.1 {
			t.Fatalf("factor %d effect = %g, want %g", j, e.Effect, want[j])
		}
	}
}

func TestManagerValidation(t *testing.T) {
	c := responseComposite(t, 0)
	m := NewManager(c)
	if _, err := m.RunPoint([]float64{1}, rng.New(1)); !errors.Is(err, ErrNoParams) {
		t.Fatalf("got %v", err)
	}
	if err := m.AddParameter("upstream", "nope", 0, 1); !errors.Is(err, ErrNoPort) {
		t.Fatalf("got %v", err)
	}
	if err := m.AddParameter("nope", "a", 0, 1); !errors.Is(err, ErrNoModel) {
		t.Fatalf("got %v", err)
	}
	if err := m.AddParameter("upstream", "a", 1, 1); !errors.Is(err, ErrBadBounds) {
		t.Fatalf("got %v", err)
	}
	if err := m.SetOutput("downstream", "nope"); !errors.Is(err, ErrNoPort) {
		t.Fatalf("got %v", err)
	}
	if err := m.AddParameter("upstream", "a", -1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunPoint([]float64{1, 2}, rng.New(1)); !errors.Is(err, ErrBadPoint) {
		t.Fatalf("got %v", err)
	}
	// Output not set.
	if _, err := m.RunPoint([]float64{1}, rng.New(1)); !errors.Is(err, ErrNoPort) {
		t.Fatalf("got %v", err)
	}
	if _, err := m.RunDesign([][]float64{{1, 2}}, 1); !errors.Is(err, ErrBadPoint) {
		t.Fatalf("got %v", err)
	}
}

func TestManagerNonScalarPortRejected(t *testing.T) {
	c := NewComposite()
	md := &Model{
		Name:    "m",
		Inputs:  []PortSpec{{Name: "s", Kind: KindSeries}},
		Outputs: []PortSpec{{Name: "o", Kind: KindSeries}},
		Run:     func(map[string]Dataset, *rng.Stream) (map[string]Dataset, error) { return nil, nil },
	}
	if err := c.Register(md); err != nil {
		t.Fatal(err)
	}
	m := NewManager(c)
	if err := m.AddParameter("m", "s", 0, 1); !errors.Is(err, ErrNotScalar) {
		t.Fatalf("got %v", err)
	}
	if err := m.SetOutput("m", "o"); !errors.Is(err, ErrNotScalar) {
		t.Fatalf("got %v", err)
	}
}

func TestSynthesizeInput(t *testing.T) {
	m := managerFixture(t, 0)
	tmpl := "accel=${upstream.a}\nbrake=${UPSTREAM.B}\ngain=${downstream.c}\n"
	out, err := m.SynthesizeInput(tmpl, []float64{0.25, -1.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := "accel=0.25\nbrake=-1.5\ngain=3\n"
	if out != want {
		t.Fatalf("synthesized = %q, want %q", out, want)
	}
	if _, err := m.SynthesizeInput("${unknown.param}", []float64{1, 2, 3}); err == nil {
		t.Fatal("unknown placeholder accepted")
	}
	if _, err := m.SynthesizeInput("${upstream.a", []float64{1, 2, 3}); err == nil {
		t.Fatal("unterminated placeholder accepted")
	}
	if _, err := m.SynthesizeInput("x", []float64{1}); !errors.Is(err, ErrBadPoint) {
		t.Fatalf("got %v", err)
	}
	// Template with no placeholders passes through.
	out, err = m.SynthesizeInput("static", []float64{1, 2, 3})
	if err != nil || out != "static" {
		t.Fatalf("static template: %q, %v", out, err)
	}
}
