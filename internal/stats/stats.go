// Package stats provides the summary statistics used across the
// repository: means, variances, covariances, quantiles (including the
// tail-quantile estimation that MCDB-R uses for risk analysis),
// confidence intervals for Monte Carlo estimators, and kernel density
// estimation (used by the sensor-aware particle-filter proposal of
// §3.2).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"modeldata/internal/rng"
)

// ErrEmpty is returned when a statistic is requested of an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// ApproxEqual reports whether a and b agree to within the absolute
// tolerance tol. It is the sanctioned replacement for float == / != on
// computed values (the floateq analyzer points here): exact comparison
// of accumulated floats depends on evaluation order, while a tolerance
// states the intended precision explicitly. NaN compares equal to
// nothing, matching IEEE semantics.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// ApproxZero reports whether x is within tol of zero — the common
// special case of ApproxEqual for residuals and differences.
func ApproxZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs. It returns
// 0 for samples of size < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Covariance returns the unbiased sample covariance of paired samples.
// It panics on length mismatch and returns 0 for samples of size < 2.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Covariance length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation of paired samples, or 0
// when either sample is constant.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 { //lint:allow floateq exactly constant samples have no correlation; guard before dividing
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Quantile returns the p-quantile of xs using linear interpolation
// between order statistics (type-7, the R default). It returns ErrEmpty
// for an empty sample and an error for p outside [0, 1]. xs is not
// modified.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile p=%g outside [0, 1]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p), nil
}

// quantileSorted computes the type-7 quantile of an already-sorted
// sample.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the quantiles of xs at each probability in ps with a
// single sort of the data.
func Quantiles(xs []float64, ps []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("stats: quantile p=%g outside [0, 1]", p)
		}
		out[i] = quantileSorted(sorted, p)
	}
	return out, nil
}

// ExtremeQuantile estimates a tail quantile (p close to 0 or 1) by
// fitting a generalized-Pareto-style exponential tail above a high
// threshold, in the spirit of MCDB-R's risk analysis (§2.1, [5]). For a
// sample of n points and a target p beyond the largest order statistic's
// reliable range, empirical quantiles are noisy; the tail fit
// extrapolates using the mean excess over the threshold.
//
// For p in the bulk (threshold coverage), it falls back to the empirical
// quantile.
func ExtremeQuantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile p=%g outside [0, 1]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := len(sorted)

	upper := p >= 0.5
	if !upper {
		// Mirror the sample so the target becomes an upper-tail problem.
		mirrored := make([]float64, n)
		for i, v := range sorted {
			mirrored[n-1-i] = -v
		}
		q, err := ExtremeQuantile(mirrored, 1-p)
		return -q, err
	}

	// Use the top 10% (at least 10 points) as tail exceedances.
	k := n / 10
	if k < 10 {
		k = 10
	}
	if k >= n {
		return quantileSorted(sorted, p), nil
	}
	threshIdx := n - k
	u := sorted[threshIdx]
	tailProb := float64(k) / float64(n)
	if 1-p >= tailProb {
		// Bulk quantile: the empirical estimate is reliable.
		return quantileSorted(sorted, p), nil
	}
	// Exponential tail: P(X > u + y | X > u) = exp(-y/beta),
	// beta = mean excess.
	excessSum := 0.0
	for i := threshIdx; i < n; i++ {
		excessSum += sorted[i] - u
	}
	beta := excessSum / float64(k)
	if beta <= 0 {
		return quantileSorted(sorted, p), nil
	}
	// Solve P(X > q) = 1-p: q = u + beta * log(tailProb/(1-p)).
	return u + beta*math.Log(tailProb/(1-p)), nil
}

// MeanCI returns the sample mean of xs together with a normal-theory
// confidence interval half-width at the given confidence level (e.g.
// 0.95). The level must lie in the open interval (0, 1); out-of-domain
// levels yield a 0 half-width rather than a quantile of a nonsense
// probability (level ≥ 1 would previously ask NormalQuantile for
// p ≥ 1 and return ±Inf or NaN silently). For n < 2 the half-width
// is 0.
func MeanCI(xs []float64, level float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 || level <= 0 || level >= 1 {
		return mean, 0
	}
	z := rng.NormalQuantile(0.5 + level/2)
	halfWidth = z * StdDev(xs) / math.Sqrt(float64(n))
	return mean, halfWidth
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and
// returns the counts. Values outside the range are clamped into the end
// bins. A non-positive nbins or an empty range yields an empty slice
// (previously a negative nbins panicked in make before the guard ran).
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 {
		return []int{}
	}
	counts := make([]int, nbins)
	if hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Var, Std     float64
	Min, Q25, Med, Q75 float64
	Max                float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	qs, err := Quantiles(xs, []float64{0, 0.25, 0.5, 0.75, 1})
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N: len(xs), Mean: Mean(xs), Var: Variance(xs), Std: StdDev(xs),
		Min: qs[0], Q25: qs[1], Med: qs[2], Q75: qs[3], Max: qs[4],
	}, nil
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Q25, s.Med, s.Q75, s.Max)
}

// BatchMeans performs the classical batch-means output analysis for
// steady-state simulations: the autocorrelated output series is cut
// into nBatches contiguous batches, whose means are approximately
// i.i.d., giving a defensible confidence interval for the long-run
// mean. This is the standard companion to the §2.3 budget-constrained
// efficiency analysis when single runs are long rather than replicated.
// It returns the grand mean and the CI half-width at the given level.
func BatchMeans(xs []float64, nBatches int, level float64) (mean, halfWidth float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if nBatches < 2 || nBatches > len(xs) {
		return 0, 0, fmt.Errorf("stats: %d batches for %d observations", nBatches, len(xs))
	}
	batchSize := len(xs) / nBatches
	means := make([]float64, nBatches)
	for b := 0; b < nBatches; b++ {
		means[b] = Mean(xs[b*batchSize : (b+1)*batchSize])
	}
	m, hw := MeanCI(means, level)
	return m, hw, nil
}
