package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"modeldata/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	// Unbiased variance of this classic sample is 32/7.
	if got, want := Variance(xs), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", got, want)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("empty/singleton edge cases wrong")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatal("Quantile(nil) should be ErrEmpty")
	}
}

func TestCovarianceKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got, want := Covariance(xs, ys), 2*Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Covariance = %g, want %g", got, want)
	}
	if got := Correlation(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Correlation = %g, want 1", got)
	}
}

func TestCorrelationConstantSample(t *testing.T) {
	if got := Correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Correlation with constant sample = %g, want 0", got)
	}
}

func TestQuantileEndpointsAndMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 9 {
		t.Fatalf("extremes: %g, %g", q0, q1)
	}
	med, _ := Quantile(xs, 0.5)
	if med != 3.5 {
		t.Fatalf("median = %g, want 3.5", med)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("p out of range should error")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilesMonotone(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		xs := rng.SampleN(rng.NormalDist{Mu: 0, Sigma: 1}, r, 50)
		ps := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
		qs, err := Quantiles(xs, ps)
		if err != nil {
			return false
		}
		for i := 1; i < len(qs); i++ {
			if qs[i-1] > qs[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtremeQuantileExponentialTail(t *testing.T) {
	// For Exponential(1), the true 0.999 quantile is ln(1000) ≈ 6.9078.
	r := rng.New(404)
	xs := rng.SampleN(rng.ExponentialDist{Rate: 1}, r, 20000)
	q, err := ExtremeQuantile(xs, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(1000)
	if math.Abs(q-want)/want > 0.15 {
		t.Fatalf("ExtremeQuantile(0.999) = %g, want ≈ %g", q, want)
	}
}

func TestExtremeQuantileLowerTail(t *testing.T) {
	r := rng.New(405)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = -r.Exponential(1)
	}
	q, err := ExtremeQuantile(xs, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log(1000)
	if math.Abs(q-want)/math.Abs(want) > 0.15 {
		t.Fatalf("ExtremeQuantile(0.001) = %g, want ≈ %g", q, want)
	}
}

func TestExtremeQuantileBulkFallsBack(t *testing.T) {
	r := rng.New(406)
	xs := rng.SampleN(rng.UniformDist{Lo: 0, Hi: 1}, r, 5000)
	qe, err := ExtremeQuantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	qb, _ := Quantile(xs, 0.5)
	if qe != qb {
		t.Fatalf("bulk ExtremeQuantile %g != empirical %g", qe, qb)
	}
}

func TestMeanCICoverage(t *testing.T) {
	// 95% CI should cover the true mean ≈ 95% of the time.
	parent := rng.New(500)
	covered := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		r := parent.Split()
		xs := rng.SampleN(rng.NormalDist{Mu: 10, Sigma: 2}, r, 100)
		mean, hw := MeanCI(xs, 0.95)
		if math.Abs(mean-10) <= hw {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("CI coverage = %g, want ≈ 0.95", frac)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{-5, 0.1, 0.9, 2.5, 99}, 0, 3, 3)
	// -5 clamps into bin 0; 0.1 and 0.9 fall in bin 0; 2.5 in bin 2;
	// 99 clamps into bin 2.
	if counts[0] != 3 || counts[1] != 0 || counts[2] != 2 {
		t.Fatalf("Histogram = %v", counts)
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	// A negative bin count used to panic in make([]int, nbins) before
	// the guard; it must behave like nbins == 0.
	for _, nbins := range []int{0, -1, -100} {
		if counts := Histogram([]float64{1, 2, 3}, 0, 3, nbins); len(counts) != 0 {
			t.Fatalf("Histogram(nbins=%d) = %v, want empty", nbins, counts)
		}
	}
	// Empty or inverted range: counts stay zero, length preserved.
	counts := Histogram([]float64{1, 2, 3}, 5, 5, 4)
	if len(counts) != 4 {
		t.Fatalf("Histogram(lo=hi) length = %d, want 4", len(counts))
	}
	for i, c := range counts {
		if c != 0 {
			t.Fatalf("Histogram(lo=hi)[%d] = %d, want 0", i, c)
		}
	}
}

func TestMeanCILevelDomain(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	wantMean := Mean(xs)
	// Out-of-domain levels: the mean is still reported but the
	// half-width collapses to 0 instead of ±Inf/NaN (level ≥ 1 used to
	// reach NormalQuantile with p ≥ 1).
	for _, level := range []float64{0, -0.5, 1, 1.5, 2} {
		mean, hw := MeanCI(xs, level)
		if mean != wantMean {
			t.Fatalf("MeanCI(level=%g) mean = %g, want %g", level, mean, wantMean)
		}
		if hw != 0 {
			t.Fatalf("MeanCI(level=%g) half-width = %g, want 0", level, hw)
		}
	}
	// In-domain level still produces a finite positive half-width.
	if _, hw := MeanCI(xs, 0.95); !(hw > 0) || math.IsInf(hw, 0) || math.IsNaN(hw) {
		t.Fatalf("MeanCI(0.95) half-width = %g, want finite > 0", hw)
	}
	// Wider confidence demands a wider interval.
	_, hw90 := MeanCI(xs, 0.90)
	_, hw99 := MeanCI(xs, 0.99)
	if !(hw99 > hw90) {
		t.Fatalf("half-width at 0.99 (%g) not wider than at 0.90 (%g)", hw99, hw90)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Med != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Summary string")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Summarize(nil) should be ErrEmpty")
	}
}

func TestBatchMeansAR1Coverage(t *testing.T) {
	// AR(1) with mean 10: naive i.i.d. CIs undercover badly; batch
	// means should cover near the nominal level.
	parent := rng.New(600)
	const trials = 300
	coveredBatch, coveredNaive := 0, 0
	for trial := 0; trial < trials; trial++ {
		r := parent.Split()
		const n = 4000
		xs := make([]float64, n)
		x := 10.0
		for i := range xs {
			x = 10 + 0.9*(x-10) + r.Normal(0, 1)
			xs[i] = x
		}
		bm, bhw, err := BatchMeans(xs, 20, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bm-10) <= bhw {
			coveredBatch++
		}
		nm, nhw := MeanCI(xs, 0.95)
		if math.Abs(nm-10) <= nhw {
			coveredNaive++
		}
	}
	fracBatch := float64(coveredBatch) / trials
	fracNaive := float64(coveredNaive) / trials
	if fracBatch < 0.85 {
		t.Fatalf("batch-means coverage = %g, want ≈ 0.95", fracBatch)
	}
	if fracNaive >= fracBatch {
		t.Fatalf("naive CI coverage %g not worse than batch means %g on AR(1)", fracNaive, fracBatch)
	}
}

func TestBatchMeansValidation(t *testing.T) {
	if _, _, err := BatchMeans(nil, 5, 0.95); !errors.Is(err, ErrEmpty) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := BatchMeans([]float64{1, 2, 3}, 1, 0.95); err == nil {
		t.Fatal("1 batch accepted")
	}
	if _, _, err := BatchMeans([]float64{1, 2, 3}, 9, 0.95); err == nil {
		t.Fatal("more batches than observations accepted")
	}
}
