package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"modeldata/internal/rng"
)

func TestKDEIntegratesToOne(t *testing.T) {
	r := rng.New(42)
	samples := rng.SampleN(rng.NormalDist{Mu: 0, Sigma: 1}, r, 500)
	for _, kern := range []Kernel{GaussianKernel, LaplaceKernel, EpanechnikovKernel} {
		kde, err := NewKDE(samples, 0.3, kern)
		if err != nil {
			t.Fatal(err)
		}
		// Trapezoidal integral over a wide range.
		sum := 0.0
		const lo, hi, steps = -8.0, 8.0, 3200
		dx := (hi - lo) / steps
		for i := 0; i <= steps; i++ {
			w := 1.0
			if i == 0 || i == steps {
				w = 0.5
			}
			sum += w * kde.Density(lo+float64(i)*dx)
		}
		sum *= dx
		if math.Abs(sum-1) > 0.01 {
			t.Errorf("KDE integral = %g, want ≈ 1", sum)
		}
	}
}

func TestKDERecoversNormalDensity(t *testing.T) {
	r := rng.New(43)
	samples := rng.SampleN(rng.NormalDist{Mu: 2, Sigma: 1}, r, 5000)
	kde, err := NewKDE(samples, 0, nil) // Silverman + Gaussian defaults
	if err != nil {
		t.Fatal(err)
	}
	d := rng.NormalDist{Mu: 2, Sigma: 1}
	for _, x := range []float64{0.5, 1.5, 2, 2.5, 3.5} {
		want := math.Exp(d.LogPDF(x))
		got := kde.Density(x)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("density(%g) = %g, want ≈ %g", x, got, want)
		}
	}
}

func TestKDEEmptySample(t *testing.T) {
	if _, err := NewKDE(nil, 1, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("NewKDE(nil) should be ErrEmpty")
	}
}

func TestKDEConstantSample(t *testing.T) {
	kde, err := NewKDE([]float64{5, 5, 5}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if kde.Bandwidth <= 0 {
		t.Fatal("bandwidth fallback failed")
	}
	if kde.Density(5) <= 0 {
		t.Fatal("density at the atom should be positive")
	}
}

func TestKDELogDensity(t *testing.T) {
	kde, err := NewKDE([]float64{0}, 1, EpanechnikovKernel)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(kde.LogDensity(10), -1) {
		t.Fatal("LogDensity outside compact support should be -Inf")
	}
	if got, want := kde.LogDensity(0), math.Log(0.75); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogDensity(0) = %g, want %g", got, want)
	}
}

func TestKernelsSymmetricNonIncreasing(t *testing.T) {
	// The paper requires K symmetric, K(0) > 0, non-increasing in |x|.
	kerns := map[string]Kernel{
		"gaussian": GaussianKernel, "laplace": LaplaceKernel, "epanechnikov": EpanechnikovKernel,
	}
	for name, k := range kerns {
		if k(0) <= 0 {
			t.Errorf("%s: K(0) = %g", name, k(0))
		}
		err := quick.Check(func(raw float64) bool {
			x := math.Mod(math.Abs(raw), 5)
			if math.Abs(k(x)-k(-x)) > 1e-12 {
				return false
			}
			return k(x) <= k(x/2)+1e-12
		}, &quick.Config{MaxCount: 100})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSilvermanBandwidth(t *testing.T) {
	if SilvermanBandwidth([]float64{1}) != 0 {
		t.Fatal("singleton bandwidth should be 0")
	}
	r := rng.New(44)
	xs := rng.SampleN(rng.NormalDist{Mu: 0, Sigma: 2}, r, 1000)
	h := SilvermanBandwidth(xs)
	want := 1.06 * 2 * math.Pow(1000, -0.2)
	if math.Abs(h-want)/want > 0.1 {
		t.Fatalf("Silverman bandwidth = %g, want ≈ %g", h, want)
	}
}
