package stats

import (
	"errors"
	"math"
)

// ErrBandwidth is returned when a KDE is constructed with a
// non-positive bandwidth.
var ErrBandwidth = errors.New("stats: KDE bandwidth must be positive")

// Kernel is a KDE kernel function: non-negative, symmetric, with
// K(0) > 0 and K(x) non-increasing in |x| (the paper's definition in
// §3.2).
type Kernel func(x float64) float64

// GaussianKernel is the standard normal density kernel.
func GaussianKernel(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// LaplaceKernel is K(x) = e^{−|x|}/2, the example kernel given in the
// paper (normalized to integrate to one).
func LaplaceKernel(x float64) float64 {
	return 0.5 * math.Exp(-math.Abs(x))
}

// EpanechnikovKernel is the minimum-variance kernel
// K(x) = 3/4·(1−x²) on [−1, 1].
func EpanechnikovKernel(x float64) float64 {
	if x < -1 || x > 1 {
		return 0
	}
	return 0.75 * (1 - x*x)
}

// KDE is a univariate kernel density estimator
// f̂(x) = (Mh)⁻¹ Σ K((x−xᵢ)/h), exactly the estimator used in §3.2 to
// approximate the particle-filter proposal and transition densities.
type KDE struct {
	Samples   []float64
	Bandwidth float64
	Kernel    Kernel
}

// NewKDE constructs a KDE over the samples. If bandwidth <= 0 it is
// chosen by Silverman's rule of thumb; if kernel is nil the Gaussian
// kernel is used. It returns an error for an empty sample.
func NewKDE(samples []float64, bandwidth float64, kernel Kernel) (*KDE, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if kernel == nil {
		kernel = GaussianKernel
	}
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidth(samples)
		if bandwidth <= 0 {
			// Constant sample: fall back to a nominal width so the
			// estimator remains a valid density.
			bandwidth = 1e-3
		}
	}
	cp := make([]float64, len(samples))
	copy(cp, samples)
	return &KDE{Samples: cp, Bandwidth: bandwidth, Kernel: kernel}, nil
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 1.06·σ̂·n^(−1/5), with σ̂ the sample standard deviation.
func SilvermanBandwidth(samples []float64) float64 {
	n := float64(len(samples))
	if n < 2 {
		return 0
	}
	return 1.06 * StdDev(samples) * math.Pow(n, -0.2)
}

// Density evaluates the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	s := 0.0
	for _, xi := range k.Samples {
		s += k.Kernel((x - xi) / k.Bandwidth)
	}
	return s / (float64(len(k.Samples)) * k.Bandwidth)
}

// LogDensity returns log of the estimated density at x, or -Inf where
// the estimate is zero.
func (k *KDE) LogDensity(x float64) float64 {
	d := k.Density(x)
	if d <= 0 {
		return math.Inf(-1)
	}
	return math.Log(d)
}
