package experiments

import (
	"context"

	"fmt"
	"math"

	"modeldata/internal/calibrate"
	"modeldata/internal/composite"
	"modeldata/internal/des"
	"modeldata/internal/doe"
	"modeldata/internal/indemics"
	"modeldata/internal/metamodel"
	"modeldata/internal/rng"
	"modeldata/internal/surrogate"
)

// E14–E16 implement directions the paper sketches but does not
// evaluate: GP-hyperparameter factor screening (§4.3, "a number of
// studies have looked at the factor screening problem in this
// context"), SQL-driven intervention-policy optimization over the
// Indemics performance measure (§2.4), and stochastic-kriging
// calibration (§3.1's closing suggestion).

func init() {
	register("E14", runE14)
	register("E15", runE15)
	register("E16", runE16)
	register("E17", runE17)
}

// runE14 screens factors via fitted GP sensitivity coefficients: the
// response depends on 2 of 6 factors; θ_j ≈ 0 flags the inactive ones.
func runE14(ctx context.Context, seed uint64) (Result, error) {
	const n = 6
	active := map[int]bool{1: true, 4: true}
	response := func(x []float64) float64 {
		return math.Sin(3*x[1]) + 0.8*x[4]*x[4]
	}
	lh, err := doe.NearlyOrthogonalLH(n, 33, seed, 20000)
	if err != nil {
		return Result{}, err
	}
	design := lh.Points(0, 1)
	y := make([]float64, len(design))
	for i, p := range design {
		y[i] = response(p)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	gp, err := metamodel.FitGPMLE(design, y, nil, calibrate.NMOptions{MaxEvals: 600})
	if err != nil {
		return Result{}, err
	}
	// MLE collapses inactive sensitivities toward zero across hundreds
	// of decades, so classify by the largest log-scale gap rather than
	// a fixed threshold.
	maxTheta := 0.0
	for _, v := range gp.Theta {
		if v > maxTheta {
			maxTheta = v
		}
	}
	important := metamodel.ThetaImportanceByGap(gp.Theta, 0)
	correct := len(important) == 2
	for _, j := range important {
		if !active[j] {
			correct = false
		}
	}
	res := Result{
		ID:    "E14",
		Title: "Factor screening from GP sensitivity coefficients",
		Paper: "§4.3: 'a very low value for θ_j implies ... no variability in model response as the value of the j-th parameter changes'",
		Shape: "MLE-fitted θ ranks exactly the active factors above the inactive ones",
		Rows: []Row{
			{Name: "factors", Value: n, Unit: ""},
			{Name: "design runs", Value: float64(len(design)), Unit: ""},
			{Name: "factors flagged important", Value: float64(len(important)), Unit: ""},
			{Name: "classification correct", Value: b2f(correct), Unit: "bool"},
			{Name: "max θ (active)", Value: maxTheta, Unit: ""},
		},
	}
	res.Verdict = correct
	return res, nil
}

// runE15 optimizes the Algorithm 1 trigger threshold against the
// economic-damage performance measure: SQL queries expose the
// measure, and the trigger fraction is chosen by grid search.
func runE15(ctx context.Context, seed uint64) (Result, error) {
	const (
		costPerCase    = 100.0
		costPerVaccine = 40.0
	)
	damageAt := func(trigger float64) (float64, error) {
		net, err := indemics.GeneratePopulation(indemics.PopulationConfig{
			N: 3000, MeanDegree: 8, Rewire: 0.1,
		}, rng.New(seed))
		if err != nil {
			return 0, err
		}
		sim, err := indemics.NewSim(net, indemics.Params{
			Beta: 0.25, LatentDays: 2, InfectiousDays: 4,
		}, seed+1)
		if err != nil {
			return 0, err
		}
		sim.Seed(6)
		var obs indemics.Observer
		if trigger > 0 {
			obs, _ = indemics.VaccinatePreschoolersSQL(trigger)
		}
		if err := sim.Run(150, obs); err != nil {
			return 0, err
		}
		return sim.Damage(costPerCase, costPerVaccine), nil
	}
	baseline, err := damageAt(0) // no intervention
	if err != nil {
		return Result{}, err
	}
	triggers := []float64{0.005, 0.01, 0.05, 0.2}
	best, bestDamage := 0.0, baseline
	res := Result{
		ID:    "E15",
		Title: "Intervention policy optimization on economic damage",
		Paper: "§2.4: 'queries can also be used [to] compute values of performance measures that are to be optimized (e.g., number of infected cases or economic damage)'",
		Shape: "some trigger threshold strictly reduces damage below no-intervention",
		Rows: []Row{
			{Name: "damage, no intervention", Value: baseline, Unit: "$"},
		},
	}
	for _, tr := range triggers {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		d, err := damageAt(tr)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, Row{
			Name: fmt.Sprintf("damage, trigger %.3f", tr), Value: d, Unit: "$",
		})
		if d < bestDamage {
			bestDamage, best = d, tr
		}
	}
	res.Rows = append(res.Rows,
		Row{Name: "best trigger", Value: best, Unit: ""},
		Row{Name: "damage saving", Value: baseline - bestDamage, Unit: "$"},
	)
	res.Verdict = best > 0 && bestDamage < baseline
	return res, nil
}

// runE16 performs stochastic-kriging calibration of the traffic model:
// the §3.1 suggestion to replace deterministic kriging with stochastic
// kriging, using replication-based noise estimates inside a sequential
// surrogate loop.
func runE16(ctx context.Context, seed uint64) (Result, error) {
	trueTheta := []float64{0.3, 0.6}
	r := rng.New(seed)
	obs := make([][]float64, 30)
	for i := range obs {
		obs[i] = TrafficMoments(trueTheta, r.Split())
	}
	problem := &calibrate.MSM{
		Observed: obs, Simulate: TrafficMoments, SimReps: 20, Seed: seed + 3,
	}
	if err := problem.EstimateOptimalWeight(); err != nil {
		return Result{}, err
	}
	// Noisy objective: J with a fresh simulation seed per evaluation
	// (no CRN), so stochastic kriging has real noise to model.
	evalSeed := seed + 1000
	noisy := func(x []float64, _ *rng.Stream) float64 {
		evalSeed++
		p := &calibrate.MSM{
			Observed: obs, Simulate: TrafficMoments, SimReps: 10, Seed: evalSeed,
		}
		p.Weight = problem.Weight
		j, err := p.J(x)
		if err != nil {
			return 1e300
		}
		return math.Log(j + 1e-12)
	}
	sp := &surrogate.Problem{
		Objective: noisy,
		Lo:        []float64{0.05, 0.05},
		Hi:        []float64{0.95, 0.95},
		Reps:      3,
		Seed:      seed + 5,
	}
	lh, err := doe.NearlyOrthogonalLH(2, 13, seed, 20000)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	skRes, err := sp.Minimize(lh.Points(0, 1), 15, 5)
	if err != nil {
		return Result{}, err
	}
	jAt, err := problem.J(skRes.X)
	if err != nil {
		return Result{}, err
	}
	jTrue, err := problem.J(trueTheta)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "E16",
		Title: "Stochastic-kriging calibration of the traffic ABS",
		Paper: "§3.1: 'the kriging method used in [45] could potentially be replaced by stochastic kriging ... which incorporate simulation variability into the fitting algorithm'",
		Shape: "the SK surrogate loop lands at a θ̂ whose J is within a small factor of J(true θ)",
		Rows: []Row{
			{Name: "θ̂ accel", Value: skRes.X[0], Unit: ""},
			{Name: "θ̂ brake", Value: skRes.X[1], Unit: ""},
			{Name: "J at θ̂", Value: jAt, Unit: ""},
			{Name: "J at true θ", Value: jTrue, Unit: ""},
			{Name: "objective evaluations", Value: float64(skRes.Evals), Unit: ""},
		},
	}
	res.Verdict = jAt < 20*jTrue
	return res, nil
}

// runE17 reproduces the §2.3 motivating example end to end with the
// real models: M1 is a demand model generating a sequence of customer
// arrival times; M2 is a queueing model whose output is the average
// waiting time of the first 100 customers. Result caching with the
// pilot-estimated α* is compared empirically against no caching under
// a fixed computing budget.
func runE17(ctx context.Context, seed uint64) (Result, error) {
	const (
		nCustomers = 100
		lambda     = 0.9
		mu         = 1.0
	)
	// The composite: M1's output Y1 is summarized by its random seed
	// material (the arrival sequence); to fit the scalar TwoStage
	// interface we cache the arrival sequences by index.
	var cache [][]float64
	two := composite.TwoStage{
		M1: func(r *rng.Stream) float64 {
			cache = append(cache, des.PoissonArrivals(nCustomers, lambda, r))
			return float64(len(cache) - 1)
		},
		M2: func(y1 float64, r *rng.Stream) float64 {
			arrivals := cache[int(y1)]
			res, err := des.SimulateQueue(arrivals, rng.ExponentialDist{Rate: mu}, nCustomers, r)
			if err != nil {
				return math.NaN()
			}
			return res.AvgWait
		},
		// Generating + transforming + storing 100 arrival times is
		// assigned 5× the cost of one queue pass (the demand model in
		// §2.3 is the expensive upstream component).
		C1: 5, C2: 1,
	}
	stats, err := two.PilotEstimate(400, seed)
	if err != nil {
		return Result{}, err
	}
	astar := composite.OptimalAlpha(stats, 0.02)

	const budget = 1200.0
	const reps = 300
	variance := func(alpha float64) (float64, error) {
		parent := rng.New(seed + uint64(alpha*1e6))
		thetas := make([]float64, reps)
		for i := range thetas {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			cache = cache[:0]
			run, err := two.RunBudgeted(budget, alpha, parent.Uint64())
			if err != nil {
				return 0, err
			}
			thetas[i] = run.Theta
		}
		return statsVariance(thetas), nil
	}
	vStar, err := variance(astar)
	if err != nil {
		return Result{}, err
	}
	vOne, err := variance(1)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "E17",
		Title: "§2.3 motivating example: demand → queue with result caching",
		Paper: "§2.3: M1 generates customer arrival times; M2 outputs the average waiting time of the first 100 customers; cache and reuse M1 outputs",
		Shape: "pilot-estimated α* < 1 and the α* estimator has lower budget-constrained variance than α = 1",
		Rows: []Row{
			{Name: "pilot V1 (output variance)", Value: stats.V1, Unit: ""},
			{Name: "pilot V2 (shared-input covariance)", Value: stats.V2, Unit: ""},
			{Name: "α* from pilot", Value: astar, Unit: ""},
			{Name: "Var(θ̂) at α*", Value: vStar, Unit: ""},
			{Name: "Var(θ̂) at α=1 (no caching)", Value: vOne, Unit: ""},
			{Name: "variance reduction", Value: vOne / vStar, Unit: "×"},
		},
	}
	res.Verdict = astar < 1 && vStar < vOne
	return res, nil
}

// statsVariance avoids an import collision with the local variable
// named stats in runE17.
func statsVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x / float64(n)
	}
	s := 0.0
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	return s / float64(n-1)
}
