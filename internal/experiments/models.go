package experiments

import (
	"context"

	"fmt"
	"math"

	"modeldata/internal/assimilate"
	"modeldata/internal/calibrate"
	"modeldata/internal/doe"
	"modeldata/internal/gridfield"
	"modeldata/internal/metamodel"
	"modeldata/internal/rng"
	"modeldata/internal/wildfire"
)

func init() {
	register("E8", runE8)
	register("E9", runE9)
	register("E10", runE10)
	register("E11", runE11)
	register("E12", runE12)
	register("E13", runE13)
}

// TrafficMoments simulates the §1 traffic model at parameters
// θ = (accel, brake) and returns its moment signature. Cars on a
// circular road accelerate toward a comfortable speed when the road is
// clear and brake in proportion to closing distance — the Bonabeau
// behavioral rules. The statistic vector is the MomentVector of the
// mean-speed time series.
func TrafficMoments(theta []float64, r *rng.Stream) []float64 {
	accel := math.Abs(theta[0])
	brake := math.Abs(theta[1])
	const (
		nCars   = 40
		roadLen = 400.0
		vMax    = 5.0
		steps   = 120
	)
	pos := make([]float64, nCars)
	vel := make([]float64, nCars)
	for i := range pos {
		pos[i] = float64(i) * roadLen / nCars * (0.9 + 0.2*r.Float64())
		vel[i] = vMax * r.Float64()
	}
	meanSpeed := make([]float64, steps)
	for t := 0; t < steps; t++ {
		for i := range pos {
			ahead := (i + 1) % nCars
			gap := math.Mod(pos[ahead]-pos[i]+roadLen, roadLen)
			if gap < 10 {
				// Someone appears in front: slow down at rate `brake`.
				vel[i] -= brake * (10 - gap) / 10 * vel[i]
			} else {
				// Clear road: accelerate toward the comfortable speed.
				vel[i] += accel * (vMax - vel[i])
			}
			vel[i] += r.Normal(0, 0.05)
			if vel[i] < 0 {
				vel[i] = 0
			}
			if vel[i] > vMax {
				vel[i] = vMax
			}
		}
		sum := 0.0
		for i := range pos {
			pos[i] = math.Mod(pos[i]+vel[i], roadLen)
			sum += vel[i]
		}
		meanSpeed[t] = sum / nCars
	}
	return calibrate.MomentVector(meanSpeed)
}

// runE8 calibrates the traffic ABS with MSM and compares the
// Nelder-Mead, grid, and kriging-surrogate (NOLH + GP) strategies.
func runE8(ctx context.Context, seed uint64) (Result, error) {
	trueTheta := []float64{0.3, 0.6}
	// Synthetic "observed" data from the true parameters.
	r := rng.New(seed)
	obs := make([][]float64, 40)
	for i := range obs {
		obs[i] = TrafficMoments(trueTheta, r.Split())
	}
	problem := &calibrate.MSM{
		Observed: obs,
		Simulate: TrafficMoments,
		SimReps:  30,
		Seed:     seed + 9,
	}
	if err := problem.EstimateOptimalWeight(); err != nil {
		return Result{}, err
	}

	// Strategy 1: Nelder-Mead from a deliberately wrong start.
	nm, err := problem.Calibrate([]float64{0.1, 0.2}, calibrate.NMOptions{MaxEvals: 120, Tol: 1e-8})
	if err != nil {
		return Result{}, err
	}
	// Strategy 2: grid search.
	grid := [][]float64{
		{0.1, 0.2, 0.3, 0.4, 0.5},
		{0.2, 0.4, 0.6, 0.8},
	}
	gr, err := problem.CalibrateGrid(grid)
	if err != nil {
		return Result{}, err
	}
	// Strategy 3: kriging surrogate over a NOLH design (Salle &
	// Yildizoglu): evaluate J on the design, fit a GP, minimize the
	// surrogate on a fine grid (surrogate evaluations are free).
	lh, err := doe.NearlyOrthogonalLH(2, 17, seed, 20000)
	if err != nil {
		return Result{}, err
	}
	design := lh.Points(0.05, 0.95)
	// Kriging over log J: the inverse-covariance weighting makes J span
	// orders of magnitude, which a GP fits poorly on the raw scale.
	jVals := make([]float64, len(design))
	for i, p := range design {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		j, err := problem.J(p)
		if err != nil {
			return Result{}, err
		}
		jVals[i] = math.Log(j + 1e-12)
	}
	gp, err := metamodel.FitGPMLE(design, jVals, nil, calibrate.NMOptions{MaxEvals: 300})
	if err != nil {
		return Result{}, err
	}
	bestSurr := []float64{0, 0}
	bestVal := math.Inf(1)
	for a := 0.05; a <= 0.95; a += 0.02 {
		for b := 0.05; b <= 0.95; b += 0.02 {
			v, err := gp.Predict([]float64{a, b})
			if err != nil {
				return Result{}, err
			}
			if v < bestVal {
				bestVal = v
				bestSurr = []float64{a, b}
			}
		}
	}
	jSurr, err := problem.J(bestSurr)
	if err != nil {
		return Result{}, err
	}
	// Surrogate workflows keep the best *evaluated* point: the design
	// points were already simulated, so return whichever of (surrogate
	// argmin, best design point) truly minimizes J.
	surrEvals := len(design) + 1
	for i, p := range design {
		if j := math.Exp(jVals[i]); j < jSurr {
			jSurr, bestSurr = j, p
		}
	}
	jNM, err := problem.J(nm.X)
	if err != nil {
		return Result{}, err
	}
	jGrid, err := problem.J(gr.X)
	if err != nil {
		return Result{}, err
	}
	thetaErr := math.Hypot(math.Abs(nm.X[0])-trueTheta[0], math.Abs(nm.X[1])-trueTheta[1])

	res := Result{
		ID:    "E8",
		Title: "MSM calibration of the traffic ABS",
		Paper: "§3.1: minimize J(θ)=GᵀWG with simulated moments; Nelder-Mead beats grid; DOE+kriging cuts simulator cost",
		Shape: "θ̂ near truth; J(NM) ≤ J(grid); surrogate competitive with far fewer simulator evaluations",
		Rows: []Row{
			{Name: "true θ = (accel, brake)", Value: trueTheta[0], Unit: fmt.Sprintf("and %g", trueTheta[1])},
			{Name: "Nelder-Mead θ̂ error (L2)", Value: thetaErr, Unit: ""},
			{Name: "J at Nelder-Mead θ̂", Value: jNM, Unit: ""},
			{Name: "Nelder-Mead J evaluations", Value: float64(nm.Evals), Unit: ""},
			{Name: "J at grid θ̂", Value: jGrid, Unit: ""},
			{Name: "grid J evaluations", Value: float64(gr.Evals), Unit: ""},
			{Name: "J at surrogate θ̂", Value: jSurr, Unit: ""},
			{Name: "surrogate J evaluations", Value: float64(surrEvals), Unit: ""},
		},
	}
	res.Verdict = thetaErr < 0.2 && jNM <= jGrid+1e-9 && jSurr <= jGrid*1.5 &&
		surrEvals < nm.Evals
	return res, nil
}

// runE9 sweeps particle counts for the wildfire filter with the prior
// proposal, compares against free-running simulation and the
// sensor-aware proposal, and demonstrates SIS collapse.
func runE9(ctx context.Context, seed uint64) (Result, error) {
	p := wildfire.Params{SpreadProb: 0.25, BurnSteps: 5, IntensityMean: 1, IntensityStd: 0.2}
	sm := wildfire.Sensors{Block: 4, Ambient: 20, FireTemp: 50, Noise: 5}
	const w, h, steps = 16, 16, 15
	init := func(r *rng.Stream) *wildfire.State {
		s, err := wildfire.NewState(w, h)
		if err != nil {
			panic(err)
		}
		if err := s.Ignite(w/2, h/2, 1); err != nil {
			panic(err)
		}
		return s
	}

	// One shared truth trajectory + observations.
	r := rng.New(seed)
	truth := init(r)
	var truths []*wildfire.State
	var obs [][]float64
	for i := 0; i < steps; i++ {
		var err error
		truth, err = wildfire.StepFire(truth, p, r)
		if err != nil {
			return Result{}, err
		}
		truths = append(truths, truth)
		obs = append(obs, sm.Observe(truth, r))
	}

	runFilter := func(model assimilate.Model[*wildfire.State, []float64], n int, disableResample bool) (meanErr, finalESS float64, err error) {
		f, err := assimilate.NewFilter(model, n, seed+uint64(n))
		if err != nil {
			return 0, 0, err
		}
		f.DisableResampling = disableResample
		total := 0
		for i := 0; i < steps; i++ {
			ps, err := f.StepCtx(ctx, obs[i])
			if err != nil {
				return 0, 0, err
			}
			cons, err := wildfire.ConsensusState(ps)
			if err != nil {
				return 0, 0, err
			}
			total += wildfire.CellError(cons, truths[i])
		}
		return float64(total) / steps, f.ESSTrace[len(f.ESSTrace)-1], nil
	}

	res := Result{
		ID:    "E9",
		Title: "Wildfire data assimilation via particle filtering",
		Paper: "§3.2: PF fuses simulation and sensors; accuracy grows with N; the sensor-aware proposal improves the prior proposal; SIS collapses without resampling",
		Shape: "error(N) decreasing; assimilation ≪ free-running; SIS ESS → 1",
	}

	// Error vs N for the prior proposal.
	prior := wildfire.PriorModel(p, sm, init)
	var errs []float64
	for _, n := range []int{20, 80, 320} {
		e, _, err := runFilter(prior, n, false)
		if err != nil {
			return Result{}, err
		}
		errs = append(errs, e)
		res.Rows = append(res.Rows, Row{Name: fmt.Sprintf("prior proposal error, N=%d", n), Value: e, Unit: "cells"})
	}

	// Free-running baseline.
	free := init(rng.New(seed + 999))
	rFree := rng.New(seed + 1000)
	totalFree := 0
	for i := 0; i < steps; i++ {
		var err error
		free, err = wildfire.StepFire(free, p, rFree)
		if err != nil {
			return Result{}, err
		}
		totalFree += wildfire.CellError(free, truths[i])
	}
	freeErr := float64(totalFree) / steps
	res.Rows = append(res.Rows, Row{Name: "free-running (no assimilation) error", Value: freeErr, Unit: "cells"})

	// Sensor-aware proposal at small N.
	aware := wildfire.SensorAwareModel(p, sm, init, wildfire.SensorAwareConfig{M: 15})
	awareErr, _, err := runFilter(aware, 20, false)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{Name: "sensor-aware proposal error, N=20", Value: awareErr, Unit: "cells"})

	// SIS collapse demonstration. The fire likelihood with crisp
	// sensors is so peaked that even per-step (SIR) weights are nearly
	// degenerate, masking the *cumulative* SIS collapse — so this
	// sub-experiment uses a flatter sensor model (higher noise), under
	// which SIR retains a healthy ESS while SIS still collapses.
	smooth := sm
	smooth.Noise = 80
	smoothObs := make([][]float64, steps)
	rS := rng.New(seed + 5)
	for i := range smoothObs {
		smoothObs[i] = smooth.Observe(truths[i], rS)
	}
	runESS := func(disable bool) (float64, error) {
		f, err := assimilate.NewFilter(wildfire.PriorModel(p, smooth, init), 100, seed+77)
		if err != nil {
			return 0, err
		}
		f.DisableResampling = disable
		for i := 0; i < steps; i++ {
			if _, err := f.Step(smoothObs[i]); err != nil {
				return 0, err
			}
		}
		return f.ESSTrace[len(f.ESSTrace)-1], nil
	}
	sisESS, err := runESS(true)
	if err != nil {
		return Result{}, err
	}
	sirESS, err := runESS(false)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		Row{Name: "final ESS, SIS (no resampling), N=100", Value: sisESS, Unit: "particles"},
		Row{Name: "final ESS, SIR, N=100", Value: sirESS, Unit: "particles"},
	)

	res.Verdict = errs[2] <= errs[0] && errs[2] < freeErr &&
		awareErr <= errs[0]*1.5+1 && sisESS < sirESS
	return res, nil
}

// runE10 verifies the §4.1 kriging properties: exact interpolation at
// design points for deterministic simulation, smoothing under
// stochastic kriging.
func runE10(ctx context.Context, seed uint64) (Result, error) {
	r := rng.New(seed)
	f := func(p []float64) float64 { return math.Sin(3*p[0]) * math.Cos(2*p[1]) }
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		pt := []float64{r.Float64() * 2, r.Float64() * 2}
		x = append(x, pt)
		y = append(y, f(pt))
	}
	gp, err := metamodel.FitGP(x, y, []float64{5, 5}, 1)
	if err != nil {
		return Result{}, err
	}
	maxKnot, maxOff := 0.0, 0.0
	for i, xi := range x {
		pred, err := gp.Predict(xi)
		if err != nil {
			return Result{}, err
		}
		if e := math.Abs(pred - y[i]); e > maxKnot {
			maxKnot = e
		}
	}
	for i := 0; i < 100; i++ {
		pt := []float64{0.1 + 1.8*r.Float64(), 0.1 + 1.8*r.Float64()}
		pred, err := gp.Predict(pt)
		if err != nil {
			return Result{}, err
		}
		if e := math.Abs(pred - f(pt)); e > maxOff {
			maxOff = e
		}
	}
	// Stochastic kriging on noisy replications of a constant.
	var xs [][]float64
	var yN, nv []float64
	for i := 0; i < 15; i++ {
		xs = append(xs, []float64{float64(i) / 4, 0})
		yN = append(yN, 3+r.Normal(0, 0.4))
		nv = append(nv, 0.16)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	sk, err := metamodel.FitStochasticKriging(xs, yN, nv, []float64{2, 2}, 1)
	if err != nil {
		return Result{}, err
	}
	skErr := 0.0
	for _, xi := range xs {
		pred, err := sk.Predict(xi)
		if err != nil {
			return Result{}, err
		}
		skErr += math.Abs(pred-3) / float64(len(xs))
	}
	res := Result{
		ID:    "E10",
		Title: "Kriging exactness and stochastic kriging",
		Paper: "§4.1: Ŷ(xᵢ) coincides with Y(xᵢ) at design points; [Σ_M+Σ_ε]⁻¹ smooths stochastic responses",
		Shape: "zero knot error; small off-design error; SK stays near the true mean",
		Rows: []Row{
			{Name: "max |Ŷ−Y| at design points", Value: maxKnot, Unit: ""},
			{Name: "max |Ŷ−f| off-design", Value: maxOff, Unit: ""},
			{Name: "stochastic kriging mean |Ŷ−truth|", Value: skErr, Unit: ""},
		},
	}
	res.Verdict = maxKnot < 1e-5 && maxOff < 0.25 && skErr < 0.3
	return res, nil
}

// runE11 reproduces the §4.2 design-size ladder for seven factors.
func runE11(_ context.Context, _ uint64) (Result, error) { //lint:allow ctxplumb tabulates fixed design sizes, nothing to cancel
	full, err := doe.FullFactorial(7)
	if err != nil {
		return Result{}, err
	}
	r3 := doe.ResolutionIII7()
	r4 := doe.ResolutionIV7()
	r5 := doe.ResolutionV7()
	res := Result{
		ID:    "E11",
		Title: "Design sizes for seven parameters",
		Paper: "§4.2: full factorial 128 runs; resolution III 8; resolution IV 16; resolution V 32",
		Shape: "run counts match the paper exactly; all designs orthogonal",
		Rows: []Row{
			{Name: "full factorial runs", Value: float64(full.NumRuns()), Unit: ""},
			{Name: "resolution III runs", Value: float64(r3.NumRuns()), Unit: ""},
			{Name: "resolution IV runs", Value: float64(r4.NumRuns()), Unit: ""},
			{Name: "resolution V runs", Value: float64(r5.NumRuns()), Unit: ""},
			{Name: "data-generation saving (full/III)", Value: float64(full.NumRuns()) / float64(r3.NumRuns()), Unit: "×"},
		},
	}
	res.Verdict = full.NumRuns() == 128 && r3.NumRuns() == 8 && r4.NumRuns() == 16 &&
		r5.NumRuns() == 32 && r3.ColumnsOrthogonal() && r4.ColumnsOrthogonal() && r5.ColumnsOrthogonal()
	return res, nil
}

// runE12 compares sequential bifurcation against one-factor-at-a-time
// screening on a 32-factor model with 3 important factors.
func runE12(ctx context.Context, seed uint64) (Result, error) {
	const n = 32
	beta := make([]float64, n)
	beta[4], beta[18], beta[27] = 6, 9, 4
	sim := doe.LinearScreeningModel(beta, 0.2)
	sb, err := doe.SequentialBifurcation(n, sim, doe.SBOptions{Threshold: 1.5, Seed: seed})
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ofat, err := doe.OneFactorAtATime(n, sim, doe.SBOptions{Threshold: 1.5, Seed: seed})
	if err != nil {
		return Result{}, err
	}
	correct := len(sb.Important) == 3 && sb.Important[0] == 4 &&
		sb.Important[1] == 18 && sb.Important[2] == 27
	res := Result{
		ID:    "E12",
		Title: "Sequential bifurcation factor screening",
		Paper: "§4.3: group testing is much faster than testing each individual parameter",
		Shape: "SB finds exactly the important factors with far fewer runs than OFAT",
		Rows: []Row{
			{Name: "factors", Value: n, Unit: ""},
			{Name: "important factors found by SB", Value: float64(len(sb.Important)), Unit: ""},
			{Name: "SB simulator runs", Value: float64(sb.Runs), Unit: ""},
			{Name: "OFAT simulator runs", Value: float64(ofat.Runs), Unit: ""},
			{Name: "run saving", Value: float64(ofat.Runs) / float64(sb.Runs), Unit: "×"},
		},
	}
	res.Verdict = correct && sb.Runs < ofat.Runs
	return res, nil
}

// runE13 verifies the gridfield restrict/regrid commute law and its
// cost saving on an irregular grid.
func runE13(ctx context.Context, seed uint64) (Result, error) {
	r := rng.New(seed)
	src, err := gridfield.IrregularGrid2D("estuary", 40, 40, func(q int) bool { return r.Bool(0.15) })
	if err != nil {
		return Result{}, err
	}
	dst, err := gridfield.UniformGrid1D("bands", 40)
	if err != nil {
		return Result{}, err
	}
	assign := func(srcID int) (int, bool) { return srcID / 40, true }
	keep := func(band int) bool { return band < 8 }
	mkField := func() (*gridfield.Field, error) {
		return gridfield.Bind(src, 0, func(id int) float64 { return float64(id % 97) })
	}
	// Plan A: regrid all, restrict after.
	a, err := mkField()
	if err != nil {
		return Result{}, err
	}
	fullOut, err := a.Regrid(dst, 0, assign, gridfield.AggMean)
	if err != nil {
		return Result{}, err
	}
	planA := fullOut.Restrict(func(id int, v float64) bool { return keep(id) })
	regridA := *a.RegridTouched
	// Plan B: push the restriction below the regrid.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	b, err := mkField()
	if err != nil {
		return Result{}, err
	}
	restricted := b.Restrict(func(id int, v float64) bool {
		band, _ := assign(id)
		return keep(band)
	})
	planB, err := restricted.Regrid(dst, 0, assign, gridfield.AggMean)
	if err != nil {
		return Result{}, err
	}
	regridB := *b.RegridTouched

	identical := len(planA.Data) == len(planB.Data)
	if identical {
		for id, v := range planA.Data {
			w, ok := planB.Data[id]
			if !ok || math.Abs(v-w) > 1e-12 {
				identical = false
				break
			}
		}
	}
	res := Result{
		ID:    "E13",
		Title: "Gridfield restrict/regrid commute rewrite",
		Paper: "§2.2: restriction operations can commute with regrid, creating opportunities for optimization",
		Shape: "identical outputs; pushed-down plan regrids ~20% of the cells",
		Rows: []Row{
			{Name: "outputs identical", Value: b2f(identical), Unit: "bool"},
			{Name: "cells regridded, restrict-after", Value: float64(regridA), Unit: ""},
			{Name: "cells regridded, restrict-first", Value: float64(regridB), Unit: ""},
			{Name: "regrid work saving", Value: float64(regridA) / float64(regridB), Unit: "×"},
		},
	}
	res.Verdict = identical && regridB*2 < regridA
	return res, nil
}
