package experiments

import (
	"context"

	"fmt"
	"math"
	"time"

	"modeldata/internal/composite"
	"modeldata/internal/engine"
	"modeldata/internal/indemics"
	"modeldata/internal/mapreduce"
	"modeldata/internal/mcdb"
	"modeldata/internal/pdesmas"
	"modeldata/internal/rng"
	"modeldata/internal/sgd"
	"modeldata/internal/simsql"
	"modeldata/internal/stats"
	"modeldata/internal/timeseries"
)

func init() {
	register("E1", runE1)
	register("E2", runE2)
	register("E3", runE3)
	register("E4", runE4)
	register("E5", runE5)
	register("E6", runE6)
	register("E7", runE7)
}

// SBPDatabase builds the §2.1 blood-pressure MCDB fixture with the
// given patient count.
func SBPDatabase(nPatients int) (*mcdb.DB, error) {
	base := engine.NewDatabase()
	patients := engine.MustNewTable("patients", engine.Schema{
		{Name: "pid", Type: engine.TypeInt},
		{Name: "gender", Type: engine.TypeString},
	})
	for i := 0; i < nPatients; i++ {
		g := "F"
		if i%2 == 0 {
			g = "M"
		}
		patients.MustInsert(engine.Int(int64(i)), engine.Str(g))
	}
	base.Put(patients)
	// SBP_PARAM is derived per VG invocation by an aggregation query
	// over a measurement-history table — "in general a VG function can
	// be parametrized using a general SQL query over the set of all
	// non-random relations" (§2.1). Running this query once per tuple
	// (bundled) instead of once per tuple per iteration (naive) is the
	// tuple-bundle saving experiment E1 measures.
	hist := engine.MustNewTable("sbp_history", engine.Schema{
		{Name: "reading", Type: engine.TypeFloat},
	})
	hr := rng.New(7)
	for i := 0; i < 2000; i++ {
		hist.MustInsert(engine.Float(hr.Normal(120, 15)))
	}
	base.Put(hist)

	db := mcdb.New(base)
	err := db.AddSpec(&mcdb.TableSpec{
		Name: "sbp_data",
		Schema: engine.Schema{
			{Name: "pid", Type: engine.TypeInt},
			{Name: "gender", Type: engine.TypeString},
			{Name: "sbp", Type: engine.TypeFloat},
		},
		ForEach: "patients",
		Params: func(db *engine.Database, outer engine.Row) (engine.Row, error) {
			h, err := db.Get("sbp_history")
			if err != nil {
				return nil, err
			}
			readings, err := h.FloatColumn("reading")
			if err != nil {
				return nil, err
			}
			return engine.Row{
				engine.Float(stats.Mean(readings)),
				engine.Float(stats.StdDev(readings)),
			}, nil
		},
		VG:            mcdb.NormalVG(),
		UncertainCols: []int{2},
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// runE1 compares tuple-bundle execution against naive per-iteration
// re-execution of the SBP query.
func runE1(ctx context.Context, seed uint64) (Result, error) {
	const patients = 300
	const iters = 300
	db, err := SBPDatabase(patients)
	if err != nil {
		return Result{}, err
	}
	t0 := time.Now() //lint:allow rngsource wall-clock timing reported as a measurement, never fed into results
	bundles, err := db.InstantiateBundledCtx(ctx, iters, seed, 0)
	if err != nil {
		return Result{}, err
	}
	bundled, err := bundles["sbp_data"].Estimate("sbp", engine.AggAvg, nil)
	if err != nil {
		return Result{}, err
	}
	bundleTime := time.Since(t0)

	t0 = time.Now() //lint:allow rngsource wall-clock timing reported as a measurement, never fed into results
	naive, err := db.MonteCarlo(ctx, iters, seed+1, 0, func(inst *engine.Database) (float64, error) {
		tbl, err := inst.Get("sbp_data")
		if err != nil {
			return 0, err
		}
		return engine.From(tbl).
			GroupBy(nil, engine.Aggregate{Fn: engine.AggAvg, Col: "sbp", As: "m"}).
			ScalarFloat()
	})
	if err != nil {
		return Result{}, err
	}
	naiveTime := time.Since(t0)

	mb, mn := stats.Mean(bundled), stats.Mean(naive)
	speedup := float64(naiveTime) / float64(bundleTime)
	res := Result{
		ID:    "E1",
		Title: "MCDB tuple bundles vs naive re-execution",
		Paper: "§2.1: MCDB executes a query plan once over tuple bundles for acceptable performance",
		Shape: "bundled execution is substantially faster with statistically identical estimates",
		Rows: []Row{
			{Name: "patients × iterations", Value: float64(patients * iters), Unit: ""},
			{Name: "bundled wall time", Value: bundleTime.Seconds(), Unit: "s"},
			{Name: "naive wall time", Value: naiveTime.Seconds(), Unit: "s"},
			{Name: "speedup", Value: speedup, Unit: "×"},
			{Name: "bundled mean SBP", Value: mb, Unit: "mmHg"},
			{Name: "naive mean SBP", Value: mn, Unit: "mmHg"},
		},
	}
	res.Verdict = speedup > 1.5 && math.Abs(mb-mn) < 1 && math.Abs(mb-120) < 1
	return res, nil
}

// runE2 exercises SimSQL's database-valued Markov chain plus the
// ABS-as-self-join step.
func runE2(ctx context.Context, seed uint64) (Result, error) {
	// Part 1: DB-valued chain with cross-table recursion A→B→A'.
	schema := engine.Schema{{Name: "v", Type: engine.TypeFloat}}
	oneRow := func(v float64) (*engine.Table, error) {
		t, err := engine.NewTable("x", schema)
		if err != nil {
			return nil, err
		}
		err = t.Insert(engine.Row{engine.Float(v)})
		return t, err
	}
	chain := &simsql.Chain{Defs: []simsql.TableDef{
		{Name: "a", Generate: func(state *engine.Database, r *rng.Stream) (*engine.Table, error) {
			base := 0.0
			if pb, err := state.Get(simsql.PrevName("b")); err == nil {
				base = pb.Rows[0][0].AsFloat()
			}
			return oneRow(base + 1 + r.Normal(0, 0.01))
		}},
		{Name: "b", Generate: func(state *engine.Database, r *rng.Stream) (*engine.Table, error) {
			a, err := state.Get("a")
			if err != nil {
				return nil, err
			}
			return oneRow(2 * a.Rows[0][0].AsFloat())
		}},
	}}
	const steps = 50
	means, err := chain.MonteCarloCtx(ctx, steps, 30, seed, 0, func(db *engine.Database) (float64, error) {
		b, err := db.Get("b")
		if err != nil {
			return 0, err
		}
		return b.Rows[0][0].AsFloat(), nil
	})
	if err != nil {
		return Result{}, err
	}
	// Deterministic recursion (noise aside): b[i] = 2(b[i−1]+1) ⇒
	// b[i] = 2^{i+2} − 2.
	wantFinal := math.Pow(2, steps+2) - 2
	relErr := math.Abs(means[steps]-wantFinal) / wantFinal

	// Part 2: ABS self-join step scaling (agents per step).
	r := rng.New(seed + 7)
	agents := engine.MustNewTable("agents", engine.Schema{
		{Name: "id", Type: engine.TypeInt},
		{Name: "pos", Type: engine.TypeFloat},
	})
	const nAgents = 2000
	for i := 0; i < nAgents; i++ {
		agents.MustInsert(engine.Int(int64(i)), engine.Float(r.Float64()*50))
	}
	step := simsql.ABSStep{
		PartKey:    func(row engine.Row) string { return fmt.Sprintf("%d", int(row[1].AsFloat())) },
		Near:       func(a, b engine.Row) bool { return true },
		Accumulate: func(acc float64, b engine.Row) float64 { return acc + b[1].AsFloat() },
		Update: func(a engine.Row, acc float64, n int, r *rng.Stream) engine.Row {
			pos := a[1].AsFloat()
			if n > 0 {
				pos += 0.5 * (acc/float64(n) - pos)
			}
			return engine.Row{a[0], engine.Float(pos)}
		},
		Workers: 8,
	}
	t0 := time.Now() //lint:allow rngsource wall-clock timing reported as a measurement, never fed into results
	next, err := step.Apply(agents, seed)
	if err != nil {
		return Result{}, err
	}
	absTime := time.Since(t0)
	posBefore, err := agents.FloatColumn("pos")
	if err != nil {
		return Result{}, err
	}
	posAfter, err := next.FloatColumn("pos")
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:    "E2",
		Title: "SimSQL database-valued Markov chain + ABS self-join",
		Paper: "§2.1: versioned recursive stochastic tables generate D[0..n]; an ABS step is a (partitioned) self-join",
		Shape: "E[D[i]] follows the recursion exactly; self-join step contracts within-cell variance",
		Rows: []Row{
			{Name: "chain steps", Value: steps, Unit: ""},
			{Name: "final E[b] relative error", Value: relErr, Unit: "fraction"},
			{Name: "ABS agents", Value: nAgents, Unit: ""},
			{Name: "ABS step wall time", Value: absTime.Seconds(), Unit: "s"},
			{Name: "variance before step", Value: stats.Variance(posBefore), Unit: ""},
			{Name: "variance after step", Value: stats.Variance(posAfter), Unit: ""},
		},
	}
	res.Verdict = relErr < 0.01 && stats.Variance(posAfter) < stats.Variance(posBefore)
	return res, nil
}

// runE3 compares the Thomas solver, sequential SGD, and DSGD on the
// cubic-spline constant system, reporting residuals and shuffle bytes.
func runE3(ctx context.Context, seed uint64) (Result, error) {
	const m = 20000
	ts := make([]float64, m+1)
	vs := make([]float64, m+1)
	for i := range ts {
		ts[i] = float64(i) * 0.01
		vs[i] = math.Sin(ts[i]/10) + 0.3*math.Cos(ts[i]/3)
	}
	series, err := timeseries.FromSlices("massive", ts, vs)
	if err != nil {
		return Result{}, err
	}
	tri, b, err := timeseries.SplineSystem(series)
	if err != nil {
		return Result{}, err
	}
	exact, err := tri.SolveThomas(b)
	if err != nil {
		return Result{}, err
	}
	opts := sgd.Options{Epochs: 60, Kaczmarz: true, Seed: seed, Workers: 4}
	xSGD, sgdStats, err := sgd.Solve(tri, b, opts)
	if err != nil {
		return Result{}, err
	}
	xDSGD, dsgdStats, err := sgd.SolveDistributedCtx(ctx, tri, b, opts)
	if err != nil {
		return Result{}, err
	}
	maxErr := func(x []float64) float64 {
		m := 0.0
		for i := range x {
			if d := math.Abs(x[i] - exact[i]); d > m {
				m = d
			}
		}
		return m
	}
	shuffleRatio := float64(dsgdStats.ShuffleBytes) / float64(sgdStats.ShuffleBytes)
	res := Result{
		ID:    "E3",
		Title: "Cubic spline constants via DSGD on MapReduce",
		Paper: "§2.2: stratified DSGD converges to the tridiagonal solution with negligible shuffling",
		Shape: "DSGD ≈ Thomas; DSGD shuffle ≪ full-iterate SGD shuffle",
		Rows: []Row{
			{Name: "system size m", Value: float64(tri.N()), Unit: "rows"},
			{Name: "SGD max error vs Thomas", Value: maxErr(xSGD), Unit: ""},
			{Name: "DSGD max error vs Thomas", Value: maxErr(xDSGD), Unit: ""},
			{Name: "SGD shuffle", Value: float64(sgdStats.ShuffleBytes), Unit: "B"},
			{Name: "DSGD shuffle", Value: float64(dsgdStats.ShuffleBytes), Unit: "B"},
			{Name: "DSGD/SGD shuffle ratio", Value: shuffleRatio, Unit: ""},
			{Name: "DSGD stratum switches", Value: float64(dsgdStats.StratumSwaps), Unit: ""},
		},
	}
	res.Verdict = maxErr(xDSGD) < 1e-6 && shuffleRatio < 0.1
	return res, nil
}

// runE4 runs Splash-style time alignment in both directions on the
// MapReduce runtime.
func runE4(ctx context.Context, seed uint64) (Result, error) {
	f := func(t float64) float64 { return math.Sin(t/8) + 0.2*math.Cos(t/2) }
	// Source model output: tick 1 over [0, 500].
	n := 501
	ts := make([]float64, n)
	vs := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)
		vs[i] = f(ts[i])
	}
	fine, err := timeseries.FromSlices("source", ts, vs)
	if err != nil {
		return Result{}, err
	}
	// Direction 1: coarser target (tick 10) ⇒ aggregation.
	var coarseTicks []float64
	for t := 0.0; t <= 500; t += 10 {
		coarseTicks = append(coarseTicks, t)
	}
	agg, class1, err := timeseries.Align(fine, coarseTicks, timeseries.InterpLinear, timeseries.AggMean)
	if err != nil {
		return Result{}, err
	}
	// Direction 2: finer target (tick 0.25) ⇒ spline interpolation on
	// MapReduce windows.
	sp, err := timeseries.NewSpline(fine)
	if err != nil {
		return Result{}, err
	}
	// Keep targets away from the endpoints: the natural-boundary
	// condition (σ₀ = σ_m = 0) costs accuracy where f″ ≠ 0.
	var fineTicks []float64
	for t := 5.0; t < 495; t += 0.25 {
		fineTicks = append(fineTicks, t)
	}
	interp, mrStats, err := timeseries.ParallelInterpolateCtx(ctx, sp, fineTicks, mapreduce.Config{Mappers: 8, Reducers: 4})
	if err != nil {
		return Result{}, err
	}
	maxInterpErr := 0.0
	for _, p := range interp.Points {
		if e := math.Abs(p.V - f(p.T)); e > maxInterpErr {
			maxInterpErr = e
		}
	}
	res := Result{
		ID:    "E4",
		Title: "Time alignment between models at scale",
		Paper: "§2.2: aggregation for coarser targets, interpolation for finer; windows processed in parallel, assembled by parallel sort",
		Shape: "classes auto-detected; window-parallel spline matches the target function",
		Rows: []Row{
			{Name: "aggregation class detected", Value: b2f(class1 == timeseries.AlignAggregation), Unit: "bool"},
			{Name: "aggregated points", Value: float64(agg.Len()), Unit: ""},
			{Name: "interpolation targets", Value: float64(interp.Len()), Unit: ""},
			{Name: "MapReduce windows (splits)", Value: float64(mrStats.InputSplits), Unit: ""},
			{Name: "MapReduce shuffle", Value: float64(mrStats.ShuffleBytes), Unit: "B"},
			{Name: "max spline error", Value: maxInterpErr, Unit: ""},
		},
	}
	res.Verdict = class1 == timeseries.AlignAggregation && maxInterpErr < 1e-3 &&
		interp.Len() == len(fineTicks)
	return res, nil
}

// runE5 sweeps the (c1/c2, V1/V2) scenario grid of §2.3 and verifies
// α* maximizes efficiency in every scenario.
func runE5(_ context.Context, _ uint64) (Result, error) { //lint:allow ctxplumb closed-form grid, finishes in microseconds; registry signature only
	costRatios := []float64{1, 10, 100}
	varRatios := []float64{1.5, 2, 10}
	alphaGrid := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.333, 0.5, 1}
	res := Result{
		ID:    "E5",
		Title: "Optimal replication fraction α* across scenarios",
		Paper: "§2.3: depending on c1/c2 and V1/V2, arbitrarily large efficiency improvements are possible",
		Shape: "g̃(α*) ≤ g̃(α) on a grid; gains grow with c1/c2",
	}
	ok := true
	prevGain := 0.0
	gainsGrow := true
	for _, cr := range costRatios {
		maxGain := 0.0
		for _, vr := range varRatios {
			s := composite.Statistics{C1: cr, C2: 1, V1: vr, V2: 1}
			astar := composite.OptimalAlpha(s, 1e-3)
			gstar := composite.GTilde(astar, s)
			for _, a := range alphaGrid {
				if composite.GTilde(a, s) < gstar-1e-9 {
					ok = false
				}
			}
			gain := composite.GTilde(1, s) / gstar
			if gain > maxGain {
				maxGain = gain
			}
			res.Rows = append(res.Rows, Row{
				Name:  fmt.Sprintf("c1/c2=%g V1/V2=%g: α*, gain", cr, vr),
				Value: gain, Unit: fmt.Sprintf("× at α*=%.3g", astar),
			})
		}
		if maxGain < prevGain {
			gainsGrow = false
		}
		prevGain = maxGain
	}
	res.Verdict = ok && gainsGrow
	return res, nil
}

// runE6 runs the Indemics Algorithm 1 experiment: vaccinate
// preschoolers when >1% are infectious, vs no intervention.
func runE6(ctx context.Context, seed uint64) (Result, error) {
	run := func(policy bool) (float64, int, error) {
		net, err := indemics.GeneratePopulation(indemics.PopulationConfig{
			N: 10000, MeanDegree: 8, Rewire: 0.1,
		}, rng.New(seed))
		if err != nil {
			return 0, 0, err
		}
		sim, err := indemics.NewSim(net, indemics.Params{
			Beta: 0.25, LatentDays: 2, InfectiousDays: 4,
		}, seed+1)
		if err != nil {
			return 0, 0, err
		}
		sim.Seed(20)
		var obs indemics.Observer
		fired := -1
		firedPtr := &fired
		if policy {
			obs, firedPtr = indemics.VaccinatePreschoolersPolicy(0.01)
		}
		if err := sim.Run(300, obs); err != nil {
			return 0, 0, err
		}
		return sim.AttackRate(), *firedPtr, nil
	}
	arBase, _, err := run(false)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	arPolicy, fired, err := run(true)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "E6",
		Title: "Indemics: SQL-specified intervention (Algorithm 1)",
		Paper: "§2.4: pause the HPC simulation, query the RDBMS snapshot, vaccinate preschoolers when >1% are sick",
		Shape: "intervention fires and reduces the final attack rate",
		Rows: []Row{
			{Name: "population", Value: 10000, Unit: "people"},
			{Name: "days simulated", Value: 300, Unit: ""},
			{Name: "attack rate, no intervention", Value: arBase, Unit: "fraction"},
			{Name: "attack rate, Algorithm 1", Value: arPolicy, Unit: "fraction"},
			{Name: "intervention day", Value: float64(fired), Unit: "day"},
			{Name: "attack-rate reduction", Value: arBase - arPolicy, Unit: "fraction"},
		},
	}
	res.Verdict = fired > 0 && arPolicy < arBase
	return res, nil
}

// runE7 measures range-query accuracy in PDES-MAS under ALP skew, plus
// the hop savings from SSV migration.
func runE7(ctx context.Context, seed uint64) (Result, error) {
	w, err := pdesmas.NewWorld(pdesmas.WorldConfig{
		Agents: 1000, ALPs: 8, Leaves: 8,
		DtMin: 0.05, DtMax: 0.4, Speed: 1, Span: 200,
	}, rng.New(seed))
	if err != nil {
		return Result{}, err
	}
	if err := w.AdvanceAllUneven(20, 2); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	q := pdesmas.RangeQuery{Time: 20, Center: 100, Radius: 40, MinAge: 25, AskerID: 0}
	truth := w.GroundTruth(q)
	syncRes, err := w.RunSync(q)
	if err != nil {
		return Result{}, err
	}
	naiveRes, err := w.RunNaive(q)
	if err != nil {
		return Result{}, err
	}
	syncErr := pdesmas.SymmetricDiff(syncRes.Agents, truth)
	naiveErr := pdesmas.SymmetricDiff(naiveRes.Agents, truth)

	// Migration experiment: hops before/after moving hot SSVs.
	w.Tree.Hops = 0
	if _, err := w.RunSync(q); err != nil {
		return Result{}, err
	}
	hopsBefore := w.Tree.Hops
	moved := w.Tree.Migrate()
	w.Tree.Hops = 0
	if _, err := w.RunSync(q); err != nil {
		return Result{}, err
	}
	hopsAfter := w.Tree.Hops

	res := Result{
		ID:    "E7",
		Title: "PDES-MAS synchronized range queries and SSV migration",
		Paper: "§2.4: ALPs progress at different rates; answering instantaneous range queries correctly is challenging; the CLP tree migrates SSVs toward accessors",
		Shape: "timestamp-synchronized queries beat latest-value reads; migration cuts routing hops",
		Rows: []Row{
			{Name: "ground-truth matches", Value: float64(len(truth)), Unit: "agents"},
			{Name: "synchronized query error", Value: float64(syncErr), Unit: "agents"},
			{Name: "naive query error", Value: float64(naiveErr), Unit: "agents"},
			{Name: "SSVs migrated", Value: float64(moved), Unit: ""},
			{Name: "query hops before migration", Value: float64(hopsBefore), Unit: ""},
			{Name: "query hops after migration", Value: float64(hopsAfter), Unit: ""},
		},
	}
	res.Verdict = syncErr < naiveErr && hopsAfter < hopsBefore
	return res, nil
}
