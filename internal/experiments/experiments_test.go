package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"modeldata/internal/rng"
)

func TestIDsOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != 26 {
		t.Fatalf("registered experiments = %d, want 26", len(ids))
	}
	if ids[0] != "F1" || ids[4] != "F5" || ids[5] != "E1" || ids[21] != "E17" ||
		ids[22] != "A1" || ids[25] != "A4" {
		t.Fatalf("order = %v", ids)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(context.Background(), "Z9", 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("got %v", err)
	}
}

// TestAllExperimentsReproduce runs every registered experiment with a
// fixed seed and requires the paper's qualitative shape to hold.
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(context.Background(), id, 20140622) // PODS'14 opening day
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if !res.Verdict {
				t.Errorf("%s did not reproduce the paper's shape:\n%s", id, res)
			}
			if res.ID != id || res.Title == "" || res.Paper == "" || len(res.Rows) == 0 {
				t.Errorf("%s: incomplete result metadata", id)
			}
			if !strings.Contains(res.String(), id) {
				t.Errorf("%s: String() missing ID", id)
			}
		})
	}
}

func TestHousingIndexShape(t *testing.T) {
	s := HousingIndex(1)
	if s.Len() != 42 {
		t.Fatalf("years = %d", s.Len())
	}
	// Peak near 2006, collapse after.
	peak, peakYear := 0.0, 0
	for _, p := range s.Points {
		if p.V > peak {
			peak, peakYear = p.V, int(p.T)
		}
	}
	if peakYear < 2004 || peakYear > 2008 {
		t.Fatalf("peak year = %d", peakYear)
	}
	last := s.Points[s.Len()-1].V
	if last > peak*0.85 {
		t.Fatalf("no collapse: last=%g peak=%g", last, peak)
	}
}

func TestTrafficMomentsRespondToParameters(t *testing.T) {
	// Higher accel with gentle braking must raise mean speed.
	slow := TrafficMoments([]float64{0.05, 0.9}, seedStream(1))
	fast := TrafficMoments([]float64{0.9, 0.1}, seedStream(1))
	if fast[0] <= slow[0] {
		t.Fatalf("mean speed: fast %g ≤ slow %g", fast[0], slow[0])
	}
	if len(slow) != 3 {
		t.Fatalf("moment vector length = %d", len(slow))
	}
}

func TestSBPDatabaseFixture(t *testing.T) {
	db, err := SBPDatabase(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Spec("sbp_data"); err != nil {
		t.Fatal(err)
	}
}

// seedStream is a tiny helper for the tests above.
func seedStream(seed uint64) *rng.Stream { return rng.New(seed) }
