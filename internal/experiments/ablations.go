package experiments

import (
	"context"

	"fmt"
	"math"
	"sort"

	"modeldata/internal/calibrate"
	"modeldata/internal/engine"
	"modeldata/internal/linalg"
	"modeldata/internal/rng"
	"modeldata/internal/sgd"
	"modeldata/internal/simsql"
	"modeldata/internal/stats"
)

// Ablations probe the design choices DESIGN.md calls out, beyond what
// the paper itself reports: A1 the Kaczmarz projection step inside
// SGD/DSGD, A2 common random numbers inside the MSM objective, A3 the
// deterministic cycling reuse order inside result caching, and A4 the
// partitioned parallelism of the ABS self-join.

func init() {
	register("A1", runA1)
	register("A2", runA2)
	register("A3", runA3)
	register("A4", runA4)
}

// runA1 ablates the Kaczmarz exact-projection step against the paper's
// plain decaying-step SGD on the spline system.
func runA1(ctx context.Context, seed uint64) (Result, error) {
	const n = 5000
	tri := &linalg.Tridiagonal{
		Sub: make([]float64, n-1), Diag: make([]float64, n), Super: make([]float64, n-1),
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		tri.Diag[i] = 4
		b[i] = math.Sin(float64(i) / 9)
	}
	for i := 0; i < n-1; i++ {
		tri.Sub[i], tri.Super[i] = 1, 1
	}
	const epochs = 40
	_, kStats, err := sgd.Solve(tri, b, sgd.Options{Epochs: epochs, Kaczmarz: true, Seed: seed})
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	_, pStats, err := sgd.Solve(tri, b, sgd.Options{Epochs: epochs, Kaczmarz: false, Step0: 0.02, Alpha: 0.51, Seed: seed})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "A1",
		Title: "Ablation: Kaczmarz projection vs decaying-step SGD",
		Paper: "design choice: the repo defaults DSGD to per-row exact projection steps; the paper's schedule is εₙ = n^(−α)",
		Shape: "equal epochs, orders-of-magnitude lower residual with the projection step",
		Rows: []Row{
			{Name: "epochs (both)", Value: epochs, Unit: ""},
			{Name: "Kaczmarz residual", Value: kStats.Residual, Unit: ""},
			{Name: "decaying-step residual", Value: pStats.Residual, Unit: ""},
			{Name: "residual ratio", Value: pStats.Residual / kStats.Residual, Unit: "×"},
		},
	}
	res.Verdict = kStats.Residual < pStats.Residual/100
	return res, nil
}

// runA2 ablates common random numbers in the MSM objective: with CRN
// the surface J(θ) is deterministic; without, simulation chatter makes
// repeated evaluations at the same θ disagree, which derails
// simplex-based optimizers.
func runA2(ctx context.Context, seed uint64) (Result, error) {
	trueTheta := []float64{0.3, 0.6}
	r := rng.New(seed)
	obs := make([][]float64, 30)
	for i := range obs {
		obs[i] = TrafficMoments(trueTheta, r.Split())
	}
	mkProblem := func(s uint64) *calibrate.MSM {
		return &calibrate.MSM{Observed: obs, Simulate: TrafficMoments, SimReps: 20, Seed: s}
	}
	theta := []float64{0.35, 0.5}
	// CRN: same seed every evaluation.
	crn := mkProblem(seed + 1)
	var crnVals, freeVals []float64
	for i := 0; i < 12; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		v, err := crn.J(theta)
		if err != nil {
			return Result{}, err
		}
		crnVals = append(crnVals, v)
		free := mkProblem(seed + 100 + uint64(i)) // fresh randomness per eval
		w, err := free.J(theta)
		if err != nil {
			return Result{}, err
		}
		freeVals = append(freeVals, w)
	}
	crnStd := stats.StdDev(crnVals)
	freeStd := stats.StdDev(freeVals)
	res := Result{
		ID:    "A2",
		Title: "Ablation: common random numbers in the MSM objective",
		Paper: "design choice: J(θ) is evaluated with a fixed simulation seed so the optimization surface is deterministic",
		Shape: "repeated J(θ) evaluations identical under CRN, noisy without",
		Rows: []Row{
			{Name: "J(θ) std under CRN (12 evals)", Value: crnStd, Unit: ""},
			{Name: "J(θ) std without CRN", Value: freeStd, Unit: ""},
			{Name: "J(θ) mean", Value: stats.Mean(freeVals), Unit: ""},
		},
	}
	// CRN repeats can differ in the last floating-point bits through
	// the mean computation; "identical" means orders of magnitude below
	// the free-randomness chatter.
	res.Verdict = freeStd > 0 && crnStd < freeStd*1e-9
	return res, nil
}

// runA3 ablates the RC reuse order: the paper's deterministic cycling
// produces a stratified sample of M1 outputs; reusing cached outputs by
// i.i.d. random draws instead inflates estimator variance.
func runA3(ctx context.Context, seed uint64) (Result, error) {
	const (
		n     = 64
		alpha = 0.25
		mN    = 16 // ⌈αn⌉
		reps  = 3000
	)
	parent := rng.New(seed)
	m1 := func(r *rng.Stream) float64 { return r.Normal(0, 1) }
	m2 := func(y1 float64, r *rng.Stream) float64 { return y1 + r.Normal(0, 0.3) }

	runOnce := func(randomReuse bool, r *rng.Stream) float64 {
		cache := make([]float64, mN)
		for i := range cache {
			cache[i] = m1(r.Split())
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			var y1 float64
			if randomReuse {
				y1 = cache[r.Intn(mN)]
			} else {
				y1 = cache[i%mN] // deterministic cycling: stratified
			}
			sum += m2(y1, r.Split())
		}
		return sum / n
	}
	var cyc, rnd []float64
	for i := 0; i < reps; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		cyc = append(cyc, runOnce(false, parent.Split()))
		rnd = append(rnd, runOnce(true, parent.Split()))
	}
	vc, vr := stats.Variance(cyc), stats.Variance(rnd)
	res := Result{
		ID:    "A3",
		Title: "Ablation: deterministic cycling vs random reuse in RC",
		Paper: "§2.3: 'the deterministic cycling scheme produces a stratified sample of the outputs of M1 and helps minimize estimator variance'",
		Shape: "cycling variance strictly below i.i.d. random reuse variance",
		Rows: []Row{
			{Name: "estimator variance, cycling", Value: vc, Unit: ""},
			{Name: "estimator variance, random reuse", Value: vr, Unit: ""},
			{Name: "variance inflation from random reuse", Value: vr / vc, Unit: "×"},
		},
	}
	res.Verdict = vc < vr
	return res, nil
}

// runA4 ablates the partitioned parallelism of the ABS self-join step.
// Wall-clock speedup is machine-dependent (this repository's CI may run
// on a single core), so the ablation measures the machine-independent
// properties that make the Wang et al. parallelization valid and
// worthwhile: (i) the step's output is bit-identical for any worker
// count (per-agent random streams are pre-split), and (ii) the
// partition structure leaves a small critical path — the achievable
// speedup bound Σwork / max-partition-work is large.
func runA4(ctx context.Context, seed uint64) (Result, error) {
	r := rng.New(seed)
	agents := engine.MustNewTable("agents", engine.Schema{
		{Name: "id", Type: engine.TypeInt},
		{Name: "pos", Type: engine.TypeFloat},
	})
	// ~60 partitions of ~50 agents: quadratic within-partition work.
	const nAgents = 3000
	for i := 0; i < nAgents; i++ {
		agents.MustInsert(engine.Int(int64(i)), engine.Float(r.Float64()*60))
	}
	mkStep := func(workers int) simsql.ABSStep {
		return simsql.ABSStep{
			PartKey:    func(row engine.Row) string { return fmt.Sprintf("%d", int(row[1].AsFloat())) },
			Near:       func(a, b engine.Row) bool { return true },
			Accumulate: func(acc float64, b engine.Row) float64 { return acc + b[1].AsFloat() },
			Update: func(a engine.Row, acc float64, n int, r *rng.Stream) engine.Row {
				pos := a[1].AsFloat()
				if n > 0 {
					pos += 0.5*(acc/float64(n)-pos) + r.Normal(0, 0.01)
				}
				return engine.Row{a[0], engine.Float(pos)}
			},
			Workers: workers,
		}
	}
	var outputs []*engine.Table
	for _, w := range []int{1, 2, 8} {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		out, err := mkStep(w).Apply(agents, seed)
		if err != nil {
			return Result{}, err
		}
		outputs = append(outputs, out)
	}
	same := true
	for _, out := range outputs[1:] {
		for i := range out.Rows {
			if !out.Rows[i][1].Equal(outputs[0].Rows[i][1]) {
				same = false
			}
		}
	}
	// Partition work profile: work(partition) = size², critical path =
	// max over partitions.
	sizes := make(map[int]int)
	for _, row := range agents.Rows {
		sizes[int(row[1].AsFloat())]++
	}
	parts := make([]int, 0, len(sizes))
	for p := range sizes {
		parts = append(parts, p)
	}
	sort.Ints(parts) // fold in fixed order: float sums round order-dependently
	total, maxWork := 0.0, 0.0
	for _, p := range parts {
		w := float64(sizes[p]) * float64(sizes[p])
		total += w
		if w > maxWork {
			maxWork = w
		}
	}
	bound := total / maxWork
	res := Result{
		ID:    "A4",
		Title: "Ablation: partitioned parallelism of the ABS self-join",
		Paper: "§2.1 (Wang et al.): 'the join can be parallelized among groups of agents ... to achieve good performance'",
		Shape: "output identical for any worker count; large achievable-speedup bound",
		Rows: []Row{
			{Name: "agents", Value: nAgents, Unit: ""},
			{Name: "partitions", Value: float64(len(sizes)), Unit: ""},
			{Name: "outputs identical across 1/2/8 workers", Value: b2f(same), Unit: "bool"},
			{Name: "achievable speedup bound Σw/max w", Value: bound, Unit: "×"},
		},
	}
	res.Verdict = same && bound > 8
	return res, nil
}
