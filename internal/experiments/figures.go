package experiments

import (
	"context"

	"fmt"
	"math"

	"modeldata/internal/composite"
	"modeldata/internal/doe"
	"modeldata/internal/rng"
	"modeldata/internal/stats"
	"modeldata/internal/timeseries"
)

func init() {
	register("F1", runF1)
	register("F2", runF2)
	register("F3", runF3)
	register("F4", runF4)
	register("F5", runF5)
}

// HousingIndex generates the synthetic median-housing-price index used
// for Figure 1: calibrated to the Case-Shiller shape — steady growth
// through the 1990s, a bubble acceleration from 1997, and the collapse
// beginning in 2006. Values are indexed to 100 in 1970.
func HousingIndex(seed uint64) *timeseries.Series {
	r := rng.New(seed)
	var pts []timeseries.Point
	v := 100.0
	for year := 1970; year <= 2011; year++ {
		growth := 0.015 // baseline real growth
		switch {
		case year >= 1997 && year < 2006:
			growth = 0.09 // bubble
		case year >= 2006:
			growth = -0.08 // collapse
		}
		v *= 1 + growth + r.Normal(0, 0.01)
		pts = append(pts, timeseries.Point{T: float64(year), V: v})
	}
	s, err := timeseries.New("housing", pts)
	if err != nil {
		panic(err) // strictly increasing years by construction
	}
	return s
}

// runF1 reproduces Figure 1: fit a simple time-series (quadratic
// trend) model to 1970–2006 and extrapolate to 2011; the extrapolation
// keeps climbing while the actual index collapses.
func runF1(ctx context.Context, seed uint64) (Result, error) { //lint:allow ctxplumb one small polynomial fit, finishes in milliseconds
	full := HousingIndex(seed)
	train := full.Slice(1970, 2007)
	model, err := timeseries.FitTrend(train, 2)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "F1",
		Title: "The dangers of extrapolation (housing prices)",
		Paper: "Figure 1: trend fitted on 1970–2006 extrapolated to 2011 fails spectacularly",
		Shape: "extrapolation error grows explosively after the 2006 regime change",
		Series: map[string][]float64{
			"actual":       nil,
			"extrapolated": nil,
		},
	}
	// In-sample fit quality on the training window.
	var inErr, inN float64
	for _, p := range train.Points {
		inErr += math.Abs(model.At(p.T)-p.V) / p.V
		inN++
	}
	inSampleMAPE := inErr / inN
	// Out-of-sample extrapolation error 2007–2011.
	var outErr, outN float64
	var finalActual, finalPred float64
	for _, p := range full.Points {
		if p.T < 2007 {
			continue
		}
		pred := model.At(p.T)
		outErr += math.Abs(pred-p.V) / p.V
		outN++
		finalActual, finalPred = p.V, pred
		res.Series["actual"] = append(res.Series["actual"], p.V)
		res.Series["extrapolated"] = append(res.Series["extrapolated"], pred)
	}
	outMAPE := outErr / outN
	res.Rows = []Row{
		{Name: "in-sample MAPE (1970–2006)", Value: inSampleMAPE, Unit: "fraction"},
		{Name: "extrapolation MAPE (2007–2011)", Value: outMAPE, Unit: "fraction"},
		{Name: "actual index 2011", Value: finalActual, Unit: "index"},
		{Name: "extrapolated index 2011", Value: finalPred, Unit: "index"},
		{Name: "2011 overshoot factor", Value: finalPred / finalActual, Unit: "×"},
	}
	res.Verdict = outMAPE > 5*inSampleMAPE && finalPred > finalActual*1.3
	return res, nil
}

// runF2 reproduces the §2.3 result-caching analysis around Figure 2:
// the measured budget-scaled variance of the RC estimator matches the
// asymptotic g(α), and the empirical efficiency-maximizing α matches
// the closed-form α*.
func runF2(ctx context.Context, seed uint64) (Result, error) {
	ts := composite.TwoStage{
		M1: func(r *rng.Stream) float64 { return r.Normal(0, 1) },
		M2: func(y1 float64, r *rng.Stream) float64 { return y1 + r.Normal(0, 1) },
		C1: 20, C2: 1,
	}
	theory := composite.Statistics{C1: ts.C1, C2: ts.C2, V1: 2, V2: 1}
	astar := composite.OptimalAlpha(theory, 1e-3)
	alphas := []float64{0.05, 0.1, astar, 0.5, 1}
	const budget = 4000.0
	const reps = 400
	parent := rng.New(seed)
	res := Result{
		ID:    "F2",
		Title: "Result caching: measured c·Var(U(c)) vs g(α)",
		Paper: "§2.3: c^{1/2}[U(c)−θ] ⇒ sqrt(g(α))·N(0,1); α* = sqrt((c2/c1)/(V1/V2−1))",
		Shape: "measured curve matches g(α); empirical argmin falls at α*",
	}
	bestAlpha, bestMeasured := 0.0, math.Inf(1)
	maxRelErr := 0.0
	for _, alpha := range alphas {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		us := make([]float64, reps)
		for i := range us {
			run, err := ts.RunBudgeted(budget, alpha, parent.Uint64())
			if err != nil {
				return Result{}, err
			}
			us[i] = run.Theta
		}
		measured := stats.Variance(us) * budget
		want := composite.GAlpha(alpha, theory)
		rel := math.Abs(measured-want) / want
		if rel > maxRelErr {
			maxRelErr = rel
		}
		if measured < bestMeasured {
			bestMeasured, bestAlpha = measured, alpha
		}
		res.Rows = append(res.Rows,
			Row{Name: fmt.Sprintf("α=%.3f measured c·Var", alpha), Value: measured, Unit: ""},
			Row{Name: fmt.Sprintf("α=%.3f theory g(α)", alpha), Value: want, Unit: ""},
		)
	}
	res.Rows = append(res.Rows,
		Row{Name: "α* (closed form)", Value: astar, Unit: ""},
		Row{Name: "α with lowest measured variance", Value: bestAlpha, Unit: ""},
		Row{Name: "max |measured−g|/g across α", Value: maxRelErr, Unit: "fraction"},
		Row{Name: "efficiency gain g(1)/g(α*)", Value: composite.GAlpha(1, theory) / composite.GAlpha(astar, theory), Unit: "×"},
	)
	res.Verdict = maxRelErr < 0.35 && bestAlpha == astar //lint:allow floateq bestAlpha is copied from a grid that contains astar itself, so identity is exact
	return res, nil
}

// runF3 reproduces Figure 3 verbatim: the 8-run resolution III
// fractional factorial for seven parameters.
func runF3(_ context.Context, _ uint64) (Result, error) { //lint:allow ctxplumb constructs a fixed 8-run design, nothing to cancel
	d := doe.ResolutionIII7()
	res := Result{
		ID:     "F3",
		Title:  "Resolution III design for seven parameters",
		Paper:  "Figure 3: 8 runs, ±1 levels, orthogonal columns",
		Shape:  "exact design matrix with orthogonal, balanced columns",
		Matrix: d.Runs,
		Rows: []Row{
			{Name: "runs", Value: float64(d.NumRuns()), Unit: ""},
			{Name: "factors", Value: float64(d.Factors), Unit: ""},
			{Name: "columns orthogonal", Value: b2f(d.ColumnsOrthogonal()), Unit: "bool"},
			{Name: "columns balanced", Value: b2f(d.Balanced()), Unit: "bool"},
		},
	}
	res.Verdict = d.NumRuns() == 8 && d.Factors == 7 && d.ColumnsOrthogonal() && d.Balanced()
	return res, nil
}

// runF4 reproduces Figure 4: the main-effects plot for seven
// parameters estimated from the 8-run Figure 3 design.
func runF4(ctx context.Context, seed uint64) (Result, error) {
	d := doe.ResolutionIII7()
	beta := []float64{3, -2, 0.2, 4, 0, -1, 0.5}
	sim := func(levels []int, r *rng.Stream) float64 {
		v := 50.0
		for j, b := range beta {
			v += b * float64(levels[j])
		}
		return v + r.Normal(0, 0.2)
	}
	y, err := doe.EvaluateDesign(ctx, d, sim, doe.EvalOptions{Seed: seed})
	if err != nil {
		return Result{}, err
	}
	effects, err := doe.MainEffects(d, y)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "F4",
		Title: "Main-effects plot for seven parameters",
		Paper: "Figure 4: per-factor average response at low/high levels from 8 runs",
		Shape: "estimated effects recover the true coefficients (effect = 2β)",
	}
	maxErr := 0.0
	for j, e := range effects {
		res.Rows = append(res.Rows,
			Row{Name: fmt.Sprintf("x%d low mean", j+1), Value: e.LowMean, Unit: ""},
			Row{Name: fmt.Sprintf("x%d high mean", j+1), Value: e.HighMean, Unit: ""},
		)
		if err := math.Abs(e.Effect - 2*beta[j]); err > maxErr {
			maxErr = err
		}
	}
	res.Rows = append(res.Rows, Row{Name: "max |effect − 2β|", Value: maxErr, Unit: ""})
	res.Verdict = maxErr < 0.5
	return res, nil
}

// runF5 reproduces Figure 5: an orthogonal Latin hypercube design for
// two factors and nine runs with levels −4…4.
func runF5(_ context.Context, _ uint64) (Result, error) { //lint:allow ctxplumb constructs a fixed 9-run design, nothing to cancel
	lh, err := doe.OrthogonalLH29()
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:     "F5",
		Title:  "Latin hypercube design for two factors and nine runs",
		Paper:  "Figure 5: each level −4…4 appears once per column; orthogonal columns",
		Shape:  "valid 9-run LH with zero column correlation",
		Matrix: lh.Levels,
		Rows: []Row{
			{Name: "runs", Value: float64(lh.NumRuns()), Unit: ""},
			{Name: "is Latin", Value: b2f(lh.IsLatin()), Unit: "bool"},
			{Name: "max column correlation", Value: lh.MaxColumnCorrelation(), Unit: ""},
		},
	}
	res.Verdict = lh.NumRuns() == 9 && lh.IsLatin() && lh.MaxColumnCorrelation() == 0 //lint:allow floateq orthogonality check: correlation of the integer design is exactly zero
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
