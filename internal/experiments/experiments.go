// Package experiments regenerates every figure and every quantitative
// claim of the paper as a reproducible experiment. Each experiment is a
// function from a seed to a Result whose rows are the numbers (or
// matrices) the paper reports; cmd/experiments prints them and
// bench_test.go wraps them as benchmarks. DESIGN.md carries the
// experiment index mapping each ID to the paper artifact it reproduces.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"modeldata/internal/obs"
)

// ErrUnknown is returned for an unregistered experiment ID.
var ErrUnknown = errors.New("experiments: unknown experiment")

// Row is one reported number.
type Row struct {
	Name  string
	Value float64
	Unit  string
}

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	// Paper states the claim or figure being reproduced; Shape states
	// the qualitative expectation; Verdict whether it held.
	Paper   string
	Shape   string
	Verdict bool
	Rows    []Row
	// Matrix optionally carries a design matrix or grid to print
	// verbatim (Figures 3 and 5).
	Matrix [][]int
	// Series optionally carries labeled numeric series (e.g. F1's
	// actual-vs-extrapolated trajectories) keyed by label.
	Series map[string][]float64
}

func (r Result) String() string {
	var b strings.Builder
	status := "REPRODUCED"
	if !r.Verdict {
		status = "MISMATCH"
	}
	fmt.Fprintf(&b, "[%s] %s — %s\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "  paper: %s\n  shape: %s\n", r.Paper, r.Shape)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-42s %12.6g %s\n", row.Name, row.Value, row.Unit)
	}
	if len(r.Matrix) > 0 {
		for _, line := range r.Matrix {
			b.WriteString("   ")
			for _, v := range line {
				fmt.Fprintf(&b, " %2d", v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Runner executes one experiment. The context carries cancellation and
// the run-wide parallel configuration (worker bound, progress hook,
// stats collector — see internal/parallel); runners thread it into
// their Monte Carlo hot loops.
type Runner func(ctx context.Context, seed uint64) (Result, error)

// registry maps experiment IDs to runners, populated by init()
// functions in the per-topic files.
var registry = map[string]Runner{} // bounded by the compiled-in experiment registrations; register only runs at init time

func register(id string, r Runner) {
	registry[id] = r
}

// prefixRank orders experiment families for display: figures (F*)
// first, then quantitative claims (E*), then ablations (A*).
func prefixRank(id string) int {
	switch id[0] {
	case 'F':
		return 0
	case 'E':
		return 1
	case 'A':
		return 2
	}
	return 3
}

// IDs returns the registered experiment IDs in display order: F*
// before E* before A*, numerically within each family.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := prefixRank(out[i]), prefixRank(out[j])
		if ri != rj {
			return ri < rj
		}
		// Malformed numeric suffixes sort as 0; IDs are compiled-in so
		// in practice every suffix parses.
		ni, _ := strconv.Atoi(out[i][1:])
		nj, _ := strconv.Atoi(out[j][1:])
		return ni < nj
	})
	return out
}

// Run executes the experiment with the given ID. Cancellation and
// parallel configuration (workers, progress, stats) travel on ctx; a
// canceled context aborts the experiment mid-loop with ctx.Err().
func Run(ctx context.Context, id string, seed uint64) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknown, id)
	}
	ctx, span := obs.Start(ctx, "experiment."+id)
	defer span.End()
	res, err := r(ctx, seed)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return res, err
}
