package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"modeldata/internal/rng"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApproxEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !approxEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At mismatch")
	}
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) == 99 {
		t.Fatal("Row must return a copy")
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatal("wrong element")
	}
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged rows: got %v, want ErrShape", err)
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	i2 := Identity(2)
	p, err := a.Mul(i2)
	if err != nil {
		t.Fatal(err)
	}
	if !vecApproxEq(p.Data, a.Data, 0) {
		t.Fatal("A·I != A")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := NewMatrixFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	if !vecApproxEq(p.Data, want, 1e-12) {
		t.Fatalf("A·B = %v, want %v", p.Data, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		m := NewMatrix(3, 4)
		for i := range m.Data {
			m.Data[i] = r.Normal(0, 1)
		}
		tt := m.T().T()
		return vecApproxEq(tt.Data, m.Data, 0)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSolveRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 5
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Normal(0, 1)
		}
		// Diagonal dominance guarantees nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.Normal(0, 2)
		}
		b, _ := a.MulVec(xTrue)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return vecApproxEq(x, xTrue, 1e-8)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestLUDet(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{4, 3}, {6, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(f.Det(), -6, 1e-12) {
		t.Fatalf("det = %g, want -6", f.Det())
	}
}

func TestInverse(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := a.Mul(inv)
	if !vecApproxEq(p.Data, Identity(2).Data, 1e-12) {
		t.Fatalf("A·A⁻¹ = %v", p.Data)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 4
		// Build SPD matrix as BᵀB + n·I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = r.Normal(0, 1)
		}
		bt := b.T()
		a, _ := bt.Mul(b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		lt := l.T()
		back, _ := l.Mul(lt)
		if !vecApproxEq(back.Data, a.Data, 1e-9) {
			return false
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.Normal(0, 1)
		}
		rhs, _ := a.MulVec(xTrue)
		x, err := CholeskySolve(l, rhs)
		return err == nil && vecApproxEq(x, xTrue, 1e-8)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
}

func TestThomasMatchesDenseSolve(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 20
		tri := &Tridiagonal{
			Sub:   make([]float64, n-1),
			Diag:  make([]float64, n),
			Super: make([]float64, n-1),
		}
		for i := 0; i < n-1; i++ {
			tri.Sub[i] = r.Normal(0, 1)
			tri.Super[i] = r.Normal(0, 1)
		}
		for i := 0; i < n; i++ {
			tri.Diag[i] = 5 + math.Abs(r.Normal(0, 1)) // diagonally dominant
		}
		d := make([]float64, n)
		for i := range d {
			d[i] = r.Normal(0, 3)
		}
		x1, err := tri.SolveThomas(d)
		if err != nil {
			return false
		}
		x2, err := Solve(tri.Dense(), d)
		if err != nil {
			return false
		}
		return vecApproxEq(x1, x2, 1e-9)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThomasResidual(t *testing.T) {
	n := 1000
	tri := splineLikeSystem(n)
	d := make([]float64, n)
	for i := range d {
		d[i] = math.Sin(float64(i) / 10)
	}
	x, err := tri.SolveThomas(d)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := tri.MulVec(x)
	if res := Norm2(Sub(ax, d)); res > 1e-9 {
		t.Fatalf("Thomas residual = %g", res)
	}
}

// splineLikeSystem builds the tridiagonal structure arising from natural
// cubic spline constants: diag 2(h_{i}+h_{i+1}), off-diagonals h.
func splineLikeSystem(n int) *Tridiagonal {
	tri := &Tridiagonal{
		Sub:   make([]float64, n-1),
		Diag:  make([]float64, n),
		Super: make([]float64, n-1),
	}
	for i := 0; i < n; i++ {
		tri.Diag[i] = 4
	}
	for i := 0; i < n-1; i++ {
		tri.Sub[i] = 1
		tri.Super[i] = 1
	}
	return tri
}

func TestTridiagonalValidate(t *testing.T) {
	bad := &Tridiagonal{Sub: []float64{1}, Diag: []float64{1, 2, 3}, Super: []float64{1, 1}}
	if err := bad.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
	empty := &Tridiagonal{}
	if err := empty.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestTridiagonalSingular(t *testing.T) {
	tri := &Tridiagonal{Sub: []float64{0}, Diag: []float64{0, 1}, Super: []float64{0}}
	if _, err := tri.SolveThomas([]float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !approxEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if !vecApproxEq(y, []float64{7, 9}, 0) {
		t.Fatalf("AXPY = %v", y)
	}
}

func TestOLSRecoversCoefficients(t *testing.T) {
	r := rng.New(99)
	n, p := 200, 3
	x := NewMatrix(n, p+1)
	beta := []float64{2, -1, 0.5, 3}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		for j := 1; j <= p; j++ {
			x.Set(i, j, r.Normal(0, 1))
		}
		y[i] = Dot(x.Row(i), beta) + r.Normal(0, 0.01)
	}
	got, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !vecApproxEq(got, beta, 0.01) {
		t.Fatalf("OLS = %v, want ≈ %v", got, beta)
	}
}

func TestOLSUnderdetermined(t *testing.T) {
	x := NewMatrix(2, 3)
	if _, err := OLS(x, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}
