// Package linalg provides the small dense linear-algebra kernel used
// throughout the repository: vectors, dense matrices, LU and Cholesky
// factorizations, tridiagonal (Thomas) solves, and ordinary least
// squares. It is deliberately minimal — just enough to support cubic
// spline constants (§2.2 of the paper), kriging predictors (§4.1), and
// MSM weight matrices (§3.1) — and uses only the standard library.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape. It panics if
// either dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d, %d)", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices, which must all have
// equal length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: (%d×%d)·(%d×%d)", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 { //lint:allow floateq sparsity fast path: only an exact zero may skip, any other value must multiply
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: (%d×%d)·vec(%d)", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: add (%d×%d)+(%d×%d)", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LU holds an LU factorization with partial pivoting: PA = LU.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a square matrix a with
// partial pivoting. It returns ErrSingular for singular input.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %d×%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		maxVal := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxVal {
				maxVal = v
				p = i
			}
		}
		if maxVal == 0 { //lint:allow floateq an exactly zero pivot column is the definition of singular here
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[k*n+j], lu.Data[p*n+j] = lu.Data[p*n+j], lu.Data[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b for x given the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: LU solve vec(%d) for n=%d", ErrShape, len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves the linear system a·x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns the matrix inverse of a.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Cholesky computes the lower-triangular Cholesky factor L of a symmetric
// positive-definite matrix a, so that a = L·Lᵀ.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky of %d×%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves A·x = b given the lower Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: CholeskySolve vec(%d) for n=%d", ErrShape, len(b), n)
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	// Back: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// Tridiagonal represents a tridiagonal system with sub-diagonal a,
// diagonal b, and super-diagonal c. For an n×n system, len(b) = n,
// len(a) = len(c) = n−1. This is the structure of the natural cubic
// spline constant system of §2.2.
type Tridiagonal struct {
	Sub, Diag, Super []float64
}

// N returns the dimension of the system.
func (t *Tridiagonal) N() int { return len(t.Diag) }

// Validate checks band lengths.
func (t *Tridiagonal) Validate() error {
	n := len(t.Diag)
	if n == 0 {
		return fmt.Errorf("%w: empty tridiagonal system", ErrShape)
	}
	if len(t.Sub) != n-1 || len(t.Super) != n-1 {
		return fmt.Errorf("%w: tridiagonal bands sub=%d super=%d for n=%d",
			ErrShape, len(t.Sub), len(t.Super), n)
	}
	return nil
}

// Dense expands the system into a dense matrix (for testing and for the
// SGD comparison experiments).
func (t *Tridiagonal) Dense() *Matrix {
	n := t.N()
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, t.Diag[i])
		if i > 0 {
			m.Set(i, i-1, t.Sub[i-1])
		}
		if i < n-1 {
			m.Set(i, i+1, t.Super[i])
		}
	}
	return m
}

// MulVec computes the tridiagonal matrix-vector product.
func (t *Tridiagonal) MulVec(x []float64) ([]float64, error) {
	n := t.N()
	if len(x) != n {
		return nil, fmt.Errorf("%w: tridiagonal MulVec vec(%d) for n=%d", ErrShape, len(x), n)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := t.Diag[i] * x[i]
		if i > 0 {
			s += t.Sub[i-1] * x[i-1]
		}
		if i < n-1 {
			s += t.Super[i] * x[i+1]
		}
		out[i] = s
	}
	return out, nil
}

// SolveThomas solves the tridiagonal system T·x = d with the Thomas
// algorithm in O(n). It returns ErrSingular if elimination encounters a
// zero pivot. The Thomas algorithm is the exact baseline against which
// the paper's DSGD solver is compared.
func (t *Tridiagonal) SolveThomas(d []float64) ([]float64, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.N()
	if len(d) != n {
		return nil, fmt.Errorf("%w: Thomas solve vec(%d) for n=%d", ErrShape, len(d), n)
	}
	cp := make([]float64, n-1)
	dp := make([]float64, n)
	if t.Diag[0] == 0 { //lint:allow floateq exact-zero pivot guard before dividing
		return nil, ErrSingular
	}
	if n > 1 {
		cp[0] = t.Super[0] / t.Diag[0]
	}
	dp[0] = d[0] / t.Diag[0]
	for i := 1; i < n; i++ {
		denom := t.Diag[i] - t.Sub[i-1]*cp[i-1]
		if denom == 0 { //lint:allow floateq exact-zero pivot guard before dividing
			return nil, ErrSingular
		}
		if i < n-1 {
			cp[i] = t.Super[i] / denom
		}
		dp[i] = (d[i] - t.Sub[i-1]*dp[i-1]) / denom
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}

// Dot returns the inner product of two equal-length vectors. It panics
// on length mismatch (programmer error at all call sites).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// AXPY computes y ← y + alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Sub returns a − b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// OLS fits ordinary least squares: it returns beta minimizing
// ‖X·beta − y‖² via the normal equations solved with Cholesky (falling
// back to LU if XᵀX is not positive definite due to rounding).
func OLS(x *Matrix, y []float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("%w: OLS X is %d×%d, y has %d", ErrShape, x.Rows, x.Cols, len(y))
	}
	if x.Rows < x.Cols {
		return nil, fmt.Errorf("%w: OLS underdetermined: %d rows < %d cols", ErrShape, x.Rows, x.Cols)
	}
	xt := x.T()
	xtx, err := xt.Mul(x)
	if err != nil {
		return nil, err
	}
	xty, err := xt.MulVec(y)
	if err != nil {
		return nil, err
	}
	if l, err := Cholesky(xtx); err == nil {
		return CholeskySolve(l, xty)
	}
	return Solve(xtx, xty)
}
