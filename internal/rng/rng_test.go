package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other and from the parent's
	// subsequent output.
	for i := 0; i < 100; i++ {
		v1, v2, vp := c1.Uint64(), c2.Uint64(), parent.Uint64()
		if v1 == v2 && v2 == vp {
			t.Fatalf("split streams identical at step %d", i)
		}
	}
}

func TestSplitNDeterministic(t *testing.T) {
	a := New(9).SplitN(4)
	b := New(9).SplitN(4)
	for i := range a {
		if a[i].Uint64() != b[i].Uint64() {
			t.Fatalf("SplitN child %d not reproducible", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %g", u)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %g, want ≈ 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]int)
	const n = 60000
	for i := 0; i < n; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) = %d out of range", v)
		}
		seen[v]++
	}
	for v := 0; v < 6; v++ {
		frac := float64(seen[v]) / n
		if math.Abs(frac-1.0/6) > 0.02 {
			t.Fatalf("Intn(6) value %d frequency %g, want ≈ 1/6", v, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	err := quick.Check(func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50, Rand: nil})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestStdNormalMoments(t *testing.T) {
	r := New(8)
	const n = 400000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.StdNormal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ≈ 1", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(10)
	const rate = 2.5
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean = %g, want ≈ %g", mean, 1/rate)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 12, 50, 200} {
		r := New(uint64(lambda*10) + 1)
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(r.Poisson(lambda))
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		tol := 4 * math.Sqrt(lambda/float64(n)) * 3
		if math.Abs(mean-lambda) > tol+0.05 {
			t.Errorf("Poisson(%g) mean = %g", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.1 {
			t.Errorf("Poisson(%g) variance = %g", lambda, variance)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 1}, {2, 3}, {9, 0.5}} {
		r := New(uint64(tc.shape*100) + uint64(tc.scale))
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(tc.shape, tc.scale)
		}
		mean := sum / n
		want := tc.shape * tc.scale
		if math.Abs(mean-want)/want > 0.02 {
			t.Errorf("Gamma(%g,%g) mean = %g, want ≈ %g", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(11)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Binomial(10, 0.3)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Binomial(10, 0.3) mean = %g, want ≈ 3", mean)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := New(12)
	w := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	for i, c := range counts {
		want := w[i] / 10
		got := float64(c) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Categorical index %d freq = %g, want ≈ %g", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %g", frac)
	}
}

func TestShuffleProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
		sum := 0
		for _, x := range xs {
			sum += x
		}
		r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		got := 0
		for _, x := range xs {
			got += x
		}
		return got == sum
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestNamespaceSeed(t *testing.T) {
	// Pure: same inputs, same output.
	a := NamespaceSeed(1, "tenant-a", 42)
	if b := NamespaceSeed(1, "tenant-a", 42); b != a {
		t.Fatalf("NamespaceSeed not deterministic: %d vs %d", a, b)
	}
	// Distinct labels, bases, and seeds land in distinct spots.
	seen := map[uint64]string{}
	add := func(desc string, v uint64) {
		if prev, ok := seen[v]; ok {
			t.Fatalf("collision between %s and %s at %d", desc, prev, v)
		}
		seen[v] = desc
	}
	add("base=1 a/42", a)
	add("base=1 b/42", NamespaceSeed(1, "tenant-b", 42))
	add("base=1 a/43", NamespaceSeed(1, "tenant-a", 43))
	add("base=2 a/42", NamespaceSeed(2, "tenant-a", 42))
	add("base=1 empty/42", NamespaceSeed(1, "", 42))
	// Labels that are prefixes of each other must still separate.
	add("base=1 t/0", NamespaceSeed(1, "t", 0))
	add("base=1 te/0", NamespaceSeed(1, "te", 0))
}
