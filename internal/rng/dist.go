package rng

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a univariate probability distribution that can be sampled and
// whose density, CDF, and moments are available where tractable. It is
// the common currency between VG functions, calibration targets, and
// sensor models.
type Dist interface {
	// Sample draws one variate using the given stream.
	Sample(r *Stream) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Var returns the distribution variance.
	Var() float64
	// LogPDF returns the log density at x (or log probability mass for
	// discrete distributions). It returns -Inf outside the support.
	LogPDF(x float64) float64
	// String describes the distribution.
	String() string
}

// NormalDist is the normal distribution N(Mu, Sigma^2).
type NormalDist struct {
	Mu    float64
	Sigma float64
}

// Sample draws a normal variate.
func (d NormalDist) Sample(r *Stream) float64 { return r.Normal(d.Mu, d.Sigma) }

// Mean returns Mu.
func (d NormalDist) Mean() float64 { return d.Mu }

// Var returns Sigma^2.
func (d NormalDist) Var() float64 { return d.Sigma * d.Sigma }

// LogPDF returns the normal log density at x.
func (d NormalDist) LogPDF(x float64) float64 {
	if d.Sigma <= 0 {
		if x == d.Mu { //lint:allow floateq degenerate sigma=0 distribution is a point mass exactly at Mu
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	z := (x - d.Mu) / d.Sigma
	return -0.5*z*z - math.Log(d.Sigma) - 0.5*math.Log(2*math.Pi)
}

func (d NormalDist) String() string { return fmt.Sprintf("Normal(μ=%g, σ=%g)", d.Mu, d.Sigma) }

// ExponentialDist is the exponential distribution with density
// f(x; θ) = θ e^{-θx}, the running example in §3.1 of the paper.
type ExponentialDist struct {
	Rate float64 // θ
}

// Sample draws an exponential variate.
func (d ExponentialDist) Sample(r *Stream) float64 { return r.Exponential(d.Rate) }

// Mean returns 1/θ.
func (d ExponentialDist) Mean() float64 { return 1 / d.Rate }

// Var returns 1/θ².
func (d ExponentialDist) Var() float64 { return 1 / (d.Rate * d.Rate) }

// LogPDF returns log θ − θx for x ≥ 0.
func (d ExponentialDist) LogPDF(x float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return math.Log(d.Rate) - d.Rate*x
}

func (d ExponentialDist) String() string { return fmt.Sprintf("Exponential(θ=%g)", d.Rate) }

// LognormalDist is the lognormal distribution: exp(N(Mu, Sigma^2)).
type LognormalDist struct {
	Mu    float64
	Sigma float64
}

// Sample draws a lognormal variate.
func (d LognormalDist) Sample(r *Stream) float64 { return r.Lognormal(d.Mu, d.Sigma) }

// Mean returns exp(Mu + Sigma²/2).
func (d LognormalDist) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Var returns (exp(Sigma²)−1)·exp(2Mu+Sigma²).
func (d LognormalDist) Var() float64 {
	s2 := d.Sigma * d.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*d.Mu+s2)
}

// LogPDF returns the lognormal log density at x.
func (d LognormalDist) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := (math.Log(x) - d.Mu) / d.Sigma
	return -0.5*z*z - math.Log(x*d.Sigma) - 0.5*math.Log(2*math.Pi)
}

func (d LognormalDist) String() string { return fmt.Sprintf("Lognormal(μ=%g, σ=%g)", d.Mu, d.Sigma) }

// UniformDist is the continuous uniform distribution on [Lo, Hi).
type UniformDist struct {
	Lo, Hi float64
}

// Sample draws a uniform variate on [Lo, Hi).
func (d UniformDist) Sample(r *Stream) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (d UniformDist) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Var returns (Hi−Lo)²/12.
func (d UniformDist) Var() float64 { w := d.Hi - d.Lo; return w * w / 12 }

// LogPDF returns −log(Hi−Lo) inside the support.
func (d UniformDist) LogPDF(x float64) float64 {
	if x < d.Lo || x >= d.Hi {
		return math.Inf(-1)
	}
	return -math.Log(d.Hi - d.Lo)
}

func (d UniformDist) String() string { return fmt.Sprintf("Uniform[%g, %g)", d.Lo, d.Hi) }

// PoissonDist is the Poisson distribution with mean Lambda.
type PoissonDist struct {
	Lambda float64
}

// Sample draws a Poisson variate (as a float64 for Dist compatibility).
func (d PoissonDist) Sample(r *Stream) float64 { return float64(r.Poisson(d.Lambda)) }

// Mean returns Lambda.
func (d PoissonDist) Mean() float64 { return d.Lambda }

// Var returns Lambda.
func (d PoissonDist) Var() float64 { return d.Lambda }

// LogPDF returns the log probability mass at x (x must be a
// non-negative integer value).
func (d PoissonDist) LogPDF(x float64) float64 {
	if x < 0 || x != math.Trunc(x) { //lint:allow floateq integrality test: Poisson support is exact integers
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(x + 1)
	return x*math.Log(d.Lambda) - d.Lambda - lg
}

func (d PoissonDist) String() string { return fmt.Sprintf("Poisson(λ=%g)", d.Lambda) }

// BernoulliDist takes value 1 with probability P and 0 otherwise.
type BernoulliDist struct {
	P float64
}

// Sample draws 0 or 1.
func (d BernoulliDist) Sample(r *Stream) float64 {
	if r.Bool(d.P) {
		return 1
	}
	return 0
}

// Mean returns P.
func (d BernoulliDist) Mean() float64 { return d.P }

// Var returns P(1−P).
func (d BernoulliDist) Var() float64 { return d.P * (1 - d.P) }

// LogPDF returns the log probability mass at x ∈ {0, 1}.
func (d BernoulliDist) LogPDF(x float64) float64 {
	switch x { //lint:allow floateq Bernoulli support is exactly {0, 1}; anything else has zero mass
	case 1:
		return math.Log(d.P)
	case 0:
		return math.Log(1 - d.P)
	}
	return math.Inf(-1)
}

func (d BernoulliDist) String() string { return fmt.Sprintf("Bernoulli(p=%g)", d.P) }

// GammaDist is the gamma distribution with the given Shape and Scale.
type GammaDist struct {
	Shape, Scale float64
}

// Sample draws a gamma variate.
func (d GammaDist) Sample(r *Stream) float64 { return r.Gamma(d.Shape, d.Scale) }

// Mean returns Shape·Scale.
func (d GammaDist) Mean() float64 { return d.Shape * d.Scale }

// Var returns Shape·Scale².
func (d GammaDist) Var() float64 { return d.Shape * d.Scale * d.Scale }

// LogPDF returns the gamma log density at x.
func (d GammaDist) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(d.Shape)
	return (d.Shape-1)*math.Log(x) - x/d.Scale - lg - d.Shape*math.Log(d.Scale)
}

func (d GammaDist) String() string { return fmt.Sprintf("Gamma(k=%g, θ=%g)", d.Shape, d.Scale) }

// EmpiricalDist resamples uniformly from a fixed set of observations
// (the bootstrap distribution). LogPDF is not defined for it.
type EmpiricalDist struct {
	Values []float64
}

// Sample draws one of the stored observations uniformly at random.
func (d EmpiricalDist) Sample(r *Stream) float64 { return d.Values[r.Intn(len(d.Values))] }

// Mean returns the sample mean.
func (d EmpiricalDist) Mean() float64 {
	s := 0.0
	for _, v := range d.Values {
		s += v
	}
	return s / float64(len(d.Values))
}

// Var returns the population variance of the stored observations.
func (d EmpiricalDist) Var() float64 {
	m := d.Mean()
	s := 0.0
	for _, v := range d.Values {
		dv := v - m
		s += dv * dv
	}
	return s / float64(len(d.Values))
}

// LogPDF is undefined for an empirical distribution; it returns NaN.
func (d EmpiricalDist) LogPDF(float64) float64 { return math.NaN() }

func (d EmpiricalDist) String() string { return fmt.Sprintf("Empirical(n=%d)", len(d.Values)) }

// NormalQuantile returns the p-quantile of the standard normal
// distribution using the Beasley-Springer-Moro rational approximation.
// It panics if p is outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("rng: NormalQuantile called with p=%g", p))
	}
	// Coefficients from Moro (1995).
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		z := y * y
		num := y * (((a[3]*z+a[2])*z+a[1])*z + a[0])
		den := (((b[3]*z+b[2])*z+b[1])*z+b[0])*z + 1
		return num / den
	}
	z := p
	if y > 0 {
		z = 1 - p
	}
	k := math.Log(-math.Log(z))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= k
		x += c[i] * pow
	}
	if y < 0 {
		return -x
	}
	return x
}

// NormalCDF returns the standard normal cumulative distribution function
// evaluated at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// SampleN draws n variates from d into a new slice.
func SampleN(d Dist, r *Stream, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

// SortedSampleN draws n variates and returns them sorted ascending,
// which is convenient for quantile checks in tests.
func SortedSampleN(d Dist, r *Stream, n int) []float64 {
	out := SampleN(d, r, n)
	sort.Float64s(out)
	return out
}
