// Package rng provides deterministic, splittable pseudo-random number
// streams and a library of probability distributions.
//
// Every stochastic component in this repository draws randomness from an
// explicit *Stream rather than a global source, so that any simulation,
// Monte Carlo estimate, or experiment can be reproduced exactly from a
// seed. Streams may be split into statistically independent child streams
// (Split), which is how parallel workers, Monte Carlo replications, and
// agent populations obtain private randomness without sharing state.
//
// The generator is xoshiro256**, seeded through SplitMix64, following the
// recommendations of Blackman and Vigna. It is not cryptographically
// secure; it is intended for simulation.
package rng

import (
	"fmt"
	"math"
)

// Stream is a deterministic pseudo-random number stream. A Stream is not
// safe for concurrent use; use Split to derive independent streams for
// concurrent workers.
type Stream struct {
	s [4]uint64
	// haveGauss caches the second variate of the Box-Muller pair.
	haveGauss bool
	gauss     float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from the given seed. Two Streams created
// with the same seed produce identical sequences.
func New(seed uint64) *Stream {
	st := seed
	var r Stream
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	// xoshiro256** must not be seeded with all zeros; SplitMix64 cannot
	// produce four consecutive zero outputs, so r.s is already valid.
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// NamespaceSeed maps (label, seed) into the seed namespace rooted at
// base: a stream seeded from base absorbs the label one byte at a time
// (folding the byte into the state, then splitting a substream), and
// the caller's seed is diffused through the final substream's output
// with SplitMix64. Distinct labels yield statistically independent
// namespaces, so a multi-tenant service can hand every tenant its own
// seed space while each tenant still addresses runs by small seeds
// (0, 1, 2, …). The mapping is pure: the same (base, label, seed)
// always produces the same effective seed, which keeps namespaced
// Monte Carlo answers exactly reproducible outside the service.
func NamespaceSeed(base uint64, label string, seed uint64) uint64 {
	r := New(base)
	for i := 0; i < len(label); i++ {
		r.s[0] ^= uint64(label[i])
		// One generator step diffuses the byte into s[1], the word the
		// next Split's output (and thus the child seed) derives from.
		r.Uint64()
		r = r.Split()
	}
	st := r.Split().Uint64() ^ seed
	return splitMix64(&st)
}

// Split derives a child stream that is statistically independent of the
// parent's subsequent output. The parent is advanced.
func (r *Stream) Split() *Stream {
	// Derive the child seed material from the parent stream, then
	// re-diffuse through SplitMix64 so parent and child sequences do not
	// overlap in practice.
	st := r.Uint64() ^ 0xd1b54a32d192ed03
	var c Stream
	for i := range c.s {
		c.s[i] = splitMix64(&st)
	}
	return &c
}

// SplitN returns n independent child streams.
func (r *Stream) SplitN(n int) []*Stream {
	out := make([]*Stream, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform variate in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform variate in (0, 1), never exactly zero,
// suitable as input to inverse-CDF transforms that take logarithms.
func (r *Stream) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul128(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul128(x, bound)
		}
	}
	return int(hi)
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask32
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask32) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Perm returns a uniformly random permutation of {0, 1, ..., n-1}.
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a normal variate with the given mean and standard
// deviation. It panics if stddev < 0.
func (r *Stream) Normal(mean, stddev float64) float64 {
	if stddev < 0 {
		panic(fmt.Sprintf("rng: Normal called with stddev=%g", stddev))
	}
	return mean + stddev*r.StdNormal()
}

// StdNormal returns a standard normal variate via the Box-Muller
// transform, caching the second variate of each generated pair.
func (r *Stream) StdNormal() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	r.gauss = rad * math.Sin(theta)
	r.haveGauss = true
	return rad * math.Cos(theta)
}

// Exponential returns an exponential variate with the given rate
// parameter theta (mean 1/theta), matching the paper's density
// f(x; θ) = θ e^{-θx}. It panics if rate <= 0.
func (r *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exponential called with rate=%g", rate))
	}
	return -math.Log(r.Float64Open()) / rate
}

// Lognormal returns a lognormal variate whose logarithm has the given
// mean and standard deviation.
func (r *Stream) Lognormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Poisson returns a Poisson variate with mean lambda. It panics if
// lambda < 0. For large lambda it uses the PTRS rejection method of
// Hörmann; for small lambda, Knuth's product method.
func (r *Stream) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic(fmt.Sprintf("rng: Poisson called with lambda=%g", lambda))
	case lambda == 0: //lint:allow floateq exact-zero rate is the degenerate always-zero draw
		return 0
	case lambda < 30:
		// Knuth: multiply uniforms until the product drops below e^-λ.
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return r.poissonPTRS(lambda)
	}
}

// poissonPTRS implements the transformed-rejection sampler for Poisson
// variates with lambda >= 10.
func (r *Stream) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}

// Gamma returns a gamma variate with the given shape and scale using the
// Marsaglia-Tsang method. It panics if shape <= 0 or scale <= 0.
func (r *Stream) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("rng: Gamma called with shape=%g scale=%g", shape, scale))
	}
	if shape < 1 {
		// Boost to shape+1 and correct with a power of a uniform.
		u := r.Float64Open()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.StdNormal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a beta(a, b) variate. It panics if a <= 0 or b <= 0.
func (r *Stream) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Binomial returns the number of successes in n Bernoulli(p) trials.
func (r *Stream) Binomial(n int, p float64) int {
	if n < 0 || p < 0 || p > 1 {
		panic(fmt.Sprintf("rng: Binomial called with n=%d p=%g", n, p))
	}
	// Direct summation; n in this repository is small at call sites.
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// Categorical returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. It panics if the weights are
// empty, negative, or sum to zero.
func (r *Stream) Categorical(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: Categorical weight[%d]=%g", i, w))
		}
		total += w
	}
	if len(weights) == 0 || total == 0 { //lint:allow floateq exact-zero mass check before dividing by total
		panic("rng: Categorical called with empty or zero weights")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
