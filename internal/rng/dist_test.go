package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// checkMoments samples n variates from d and verifies sample mean and
// variance against the analytic values within relative tolerance tol.
func checkMoments(t *testing.T, d Dist, seed uint64, n int, tol float64) {
	t.Helper()
	r := New(seed)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	scale := math.Max(math.Abs(d.Mean()), 0.1)
	if math.Abs(mean-d.Mean())/scale > tol {
		t.Errorf("%v: sample mean %g, want %g", d, mean, d.Mean())
	}
	vscale := math.Max(d.Var(), 0.1)
	if math.Abs(variance-d.Var())/vscale > 3*tol {
		t.Errorf("%v: sample variance %g, want %g", d, variance, d.Var())
	}
}

func TestDistMoments(t *testing.T) {
	const n = 300000
	dists := []Dist{
		NormalDist{Mu: 3, Sigma: 2},
		ExponentialDist{Rate: 0.7},
		LognormalDist{Mu: 0, Sigma: 0.5},
		UniformDist{Lo: -1, Hi: 5},
		PoissonDist{Lambda: 6},
		BernoulliDist{P: 0.35},
		GammaDist{Shape: 3, Scale: 2},
	}
	for i, d := range dists {
		checkMoments(t, d, uint64(100+i), n, 0.02)
	}
}

func TestEmpiricalDist(t *testing.T) {
	d := EmpiricalDist{Values: []float64{1, 2, 3, 4}}
	if got, want := d.Mean(), 2.5; got != want {
		t.Fatalf("Mean = %g, want %g", got, want)
	}
	if got, want := d.Var(), 1.25; got != want {
		t.Fatalf("Var = %g, want %g", got, want)
	}
	r := New(55)
	for i := 0; i < 100; i++ {
		v := d.Sample(r)
		if v < 1 || v > 4 {
			t.Fatalf("Sample outside observed values: %g", v)
		}
	}
	if !math.IsNaN(d.LogPDF(2)) {
		t.Fatal("EmpiricalDist LogPDF should be NaN")
	}
}

func TestNormalLogPDF(t *testing.T) {
	d := NormalDist{Mu: 0, Sigma: 1}
	// φ(0) = 1/sqrt(2π).
	want := -0.5 * math.Log(2*math.Pi)
	if got := d.LogPDF(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogPDF(0) = %g, want %g", got, want)
	}
}

func TestExponentialLogPDFSupport(t *testing.T) {
	d := ExponentialDist{Rate: 2}
	if !math.IsInf(d.LogPDF(-1), -1) {
		t.Fatal("LogPDF(-1) should be -Inf")
	}
	if got, want := d.LogPDF(0), math.Log(2.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogPDF(0) = %g, want %g", got, want)
	}
}

func TestPoissonLogPDFSumsToOne(t *testing.T) {
	d := PoissonDist{Lambda: 3}
	sum := 0.0
	for k := 0; k <= 60; k++ {
		sum += math.Exp(d.LogPDF(float64(k)))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Poisson pmf sums to %g", sum)
	}
	if !math.IsInf(d.LogPDF(1.5), -1) {
		t.Fatal("Poisson LogPDF at non-integer should be -Inf")
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	err := quick.Check(func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.98) + 0.01 // p in [0.01, 0.99]
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-6
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.975:  1.959964,
		0.025:  -1.959964,
		0.8413: 0.99982, // ≈ Φ(1)
	}
	for p, want := range cases {
		if got := NormalQuantile(p); math.Abs(got-want) > 1e-3 {
			t.Errorf("NormalQuantile(%g) = %g, want ≈ %g", p, got, want)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%g) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	err := quick.Check(func(x float64) bool {
		x = math.Mod(x, 8)
		return math.Abs(NormalCDF(x)+NormalCDF(-x)-1) < 1e-12
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleN(t *testing.T) {
	d := UniformDist{Lo: 0, Hi: 1}
	xs := SampleN(d, New(77), 10)
	if len(xs) != 10 {
		t.Fatalf("SampleN length = %d", len(xs))
	}
	ys := SortedSampleN(d, New(77), 10)
	for i := 1; i < len(ys); i++ {
		if ys[i-1] > ys[i] {
			t.Fatal("SortedSampleN not sorted")
		}
	}
}
