// Command sqlcli is an interactive SQL shell over the engine — the
// experimenter's console of the Indemics workflow (§2.4). It boots a
// small epidemic, pauses it after the requested number of days, loads
// the relational snapshot, and then reads SQL statements from stdin.
//
// Usage:
//
//	sqlcli [-people 2000] [-days 30] [-seed 1]
//	> SELECT state, COUNT(*) AS n FROM person GROUP BY state;
//	> SELECT pid FROM person WHERE age <= 4 AND state = 'I' LIMIT 5;
//	> EXPLAIN SELECT p.age FROM person JOIN contact ON person.pid = contact.src;
//
// EXPLAIN [JSON] SELECT renders the cost-based query plan (join
// order, build sides, pushed filters, cardinality estimates) without
// running the statement.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"modeldata/internal/indemics"
	"modeldata/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqlcli: ")
	people := flag.Int("people", 2000, "population size")
	days := flag.Int("days", 30, "days to simulate before pausing")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	net, err := indemics.GeneratePopulation(indemics.PopulationConfig{
		N: *people, MeanDegree: 8, Rewire: 0.1,
	}, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}
	sim, err := indemics.NewSim(net, indemics.Params{
		Beta: 0.25, LatentDays: 2, InfectiousDays: 4,
	}, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	sim.Seed(5)
	if err := sim.Run(*days, nil); err != nil {
		log.Fatal(err)
	}
	db := sim.Database()
	fmt.Printf("epidemic paused at day %d over %d people; tables: person, contact\n", *days, *people)
	fmt.Println(`type SQL statements (end with newline), EXPLAIN [JSON] SELECT ... to show plans, or \q to quit`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\q` || strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			break
		}
		res, err := db.Query(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(res)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
