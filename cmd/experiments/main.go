// Command experiments regenerates every figure and quantitative claim
// of the paper and prints paper-vs-measured reports (the source of
// EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run F1,E3] [-seed 20140622] [-workers 8] [-md] [-stats]
//	            [-retries 2] [-spec 3] [-chaos 0.05] [-trace out.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With no -run flag every registered experiment runs. -md emits a
// Markdown table suitable for EXPERIMENTS.md; -workers bounds the
// parallelism of every Monte Carlo loop (results are identical at any
// worker count); -stats prints a per-experiment run report (throughput,
// engine columnar-vs-row activity, shuffle bytes, fault-tolerance
// counters). -retries grants every runtime task a retry budget and
// -spec enables speculative re-execution of stragglers; -chaos injects
// deterministic task panics with the given probability (pair it with
// -retries to exercise the recovery path). None of these change the
// numbers produced. -trace writes the span tree of all executed
// experiments as a Chrome trace-event JSON file (load it in
// chrome://tracing or https://ui.perfetto.dev); -cpuprofile and
// -memprofile write standard pprof profiles. Interrupting the process
// (Ctrl-C) cancels the running experiment promptly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"

	"modeldata"
	"modeldata/internal/experiments"
	"modeldata/internal/obs"
)

func main() {
	os.Exit(realMain())
}

// realMain holds the program body so that deferred writers (trace dump,
// profiles) run before the process exits with a status code.
func realMain() int {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", modeldata.DefaultSeed, "master random seed")
	workers := flag.Int("workers", 0, "worker bound for parallel loops (0 = GOMAXPROCS)")
	md := flag.Bool("md", false, "emit a Markdown report")
	stats := flag.Bool("stats", false, "print per-experiment iteration, shuffle, and fault-tolerance counters")
	retries := flag.Int("retries", 0, "per-task retry budget for runtime fault tolerance")
	spec := flag.Float64("spec", 0, "speculative-execution factor (backup tasks beyond this multiple of the median task time; 0 = off)")
	chaos := flag.Float64("chaos", 0, "deterministic task-panic probability for fault injection (0 = off; pair with -retries)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON span dump to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	list := flag.Bool("list", false, "list registered experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range modeldata.ExperimentIDs() {
			fmt.Println(id)
		}
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			if err := stopProf(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
		defer func() {
			if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				return
			}
			snap := tracer.Snapshot()
			fmt.Fprintf(os.Stderr, "trace: %d spans (max depth %d) written to %s\n",
				len(snap), tracer.MaxDepth(), *tracePath)
		}()
	}

	ids := modeldata.ExperimentIDs()
	if *runList != "" {
		ids = strings.Split(*runList, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	failures := 0
	if *md {
		fmt.Println("| ID | Title | Verdict | Key numbers |")
		fmt.Println("|---|---|---|---|")
	}
	for _, id := range ids {
		var st modeldata.Stats
		opts := []modeldata.Option{
			modeldata.WithSeed(*seed),
			modeldata.WithWorkers(*workers),
			modeldata.WithRetries(*retries),
			modeldata.WithSpeculation(*spec),
			modeldata.WithStats(&st),
		}
		if *chaos > 0 {
			opts = append(opts, modeldata.WithChaos(*chaos, *seed))
		}
		if tracer != nil {
			opts = append(opts, modeldata.WithTracer(tracer))
		}
		res, err := modeldata.Run(ctx, id, opts...)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			return 130
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			failures++
			continue
		}
		if !res.Verdict {
			failures++
		}
		if *md {
			printMarkdown(res)
		} else {
			fmt.Println(res)
			printSeries(res)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "[%s] %s", res.ID, st.Report())
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed to reproduce\n", failures)
		return 1
	}
	return 0
}

func printMarkdown(res experiments.Result) {
	verdict := "✅ reproduced"
	if !res.Verdict {
		verdict = "❌ mismatch"
	}
	var keys []string
	max := 4
	if len(res.Rows) < max {
		max = len(res.Rows)
	}
	for _, row := range res.Rows[:max] {
		keys = append(keys, fmt.Sprintf("%s = %.5g %s", row.Name, row.Value, row.Unit))
	}
	fmt.Printf("| %s | %s | %s | %s |\n", res.ID, res.Title, verdict, strings.Join(keys, "; "))
}

// printSeries renders any attached numeric series as unicode
// sparklines (F1's actual-vs-extrapolated trajectories).
func printSeries(res experiments.Result) {
	if len(res.Series) == 0 {
		return
	}
	labels := make([]string, 0, len(res.Series))
	for label := range res.Series {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, label := range labels {
		for _, v := range res.Series[label] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if !(hi > lo) {
		return
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	for _, label := range labels {
		var b strings.Builder
		for _, v := range res.Series[label] {
			idx := int((v - lo) / (hi - lo) * float64(len(bars)-1))
			b.WriteRune(bars[idx])
		}
		fmt.Printf("  %-14s %s\n", label, b.String())
	}
	fmt.Println()
}
