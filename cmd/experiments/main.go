// Command experiments regenerates every figure and quantitative claim
// of the paper and prints paper-vs-measured reports (the source of
// EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run F1,E3] [-seed 20140622] [-workers 8] [-md] [-stats]
//	            [-retries 2] [-spec 3]
//
// With no -run flag every registered experiment runs. -md emits a
// Markdown table suitable for EXPERIMENTS.md; -workers bounds the
// parallelism of every Monte Carlo loop (results are identical at any
// worker count); -stats prints per-experiment throughput and
// fault-tolerance counters. -retries grants every runtime task a retry
// budget and -spec enables speculative re-execution of stragglers;
// neither changes the numbers produced. Interrupting the process
// (Ctrl-C) cancels the running experiment promptly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"

	"modeldata"
	"modeldata/internal/experiments"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", modeldata.DefaultSeed, "master random seed")
	workers := flag.Int("workers", 0, "worker bound for parallel loops (0 = GOMAXPROCS)")
	md := flag.Bool("md", false, "emit a Markdown report")
	stats := flag.Bool("stats", false, "print per-experiment iteration, shuffle, and fault-tolerance counters")
	retries := flag.Int("retries", 0, "per-task retry budget for runtime fault tolerance")
	spec := flag.Float64("spec", 0, "speculative-execution factor (backup tasks beyond this multiple of the median task time; 0 = off)")
	list := flag.Bool("list", false, "list registered experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range modeldata.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ids := modeldata.ExperimentIDs()
	if *runList != "" {
		ids = strings.Split(*runList, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	failures := 0
	if *md {
		fmt.Println("| ID | Title | Verdict | Key numbers |")
		fmt.Println("|---|---|---|---|")
	}
	for _, id := range ids {
		var st modeldata.Stats
		res, err := modeldata.Run(ctx, id,
			modeldata.WithSeed(*seed),
			modeldata.WithWorkers(*workers),
			modeldata.WithRetries(*retries),
			modeldata.WithSpeculation(*spec),
			modeldata.WithStats(&st))
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			failures++
			continue
		}
		if !res.Verdict {
			failures++
		}
		if *md {
			printMarkdown(res)
		} else {
			fmt.Println(res)
			printSeries(res)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "  [%s] iters=%d shuffle=%dB attempts=%d retries=%d spec=%d/%d backoff=%s elapsed=%s rate=%.0f/s\n",
				res.ID, st.Iterations, st.ShuffleBytes,
				st.TaskAttempts, st.Retries, st.SpeculativeWins, st.SpeculativeLaunches,
				st.BackoffTime.Round(0), st.Elapsed.Round(0), st.SamplesPerSec)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed to reproduce\n", failures)
		os.Exit(1)
	}
}

func printMarkdown(res experiments.Result) {
	verdict := "✅ reproduced"
	if !res.Verdict {
		verdict = "❌ mismatch"
	}
	var keys []string
	max := 4
	if len(res.Rows) < max {
		max = len(res.Rows)
	}
	for _, row := range res.Rows[:max] {
		keys = append(keys, fmt.Sprintf("%s = %.5g %s", row.Name, row.Value, row.Unit))
	}
	fmt.Printf("| %s | %s | %s | %s |\n", res.ID, res.Title, verdict, strings.Join(keys, "; "))
}

// printSeries renders any attached numeric series as unicode
// sparklines (F1's actual-vs-extrapolated trajectories).
func printSeries(res experiments.Result) {
	if len(res.Series) == 0 {
		return
	}
	labels := make([]string, 0, len(res.Series))
	for label := range res.Series {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, label := range labels {
		for _, v := range res.Series[label] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if !(hi > lo) {
		return
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	for _, label := range labels {
		var b strings.Builder
		for _, v := range res.Series[label] {
			idx := int((v - lo) / (hi - lo) * float64(len(bars)-1))
			b.WriteRune(bars[idx])
		}
		fmt.Printf("  %-14s %s\n", label, b.String())
	}
	fmt.Println()
}
