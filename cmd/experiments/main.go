// Command experiments regenerates every figure and quantitative claim
// of the paper and prints paper-vs-measured reports (the source of
// EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run F1,E3] [-seed 20140622] [-md]
//
// With no -run flag every registered experiment runs. -md emits a
// Markdown table suitable for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"modeldata/internal/experiments"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", 20140622, "master random seed")
	md := flag.Bool("md", false, "emit a Markdown report")
	list := flag.Bool("list", false, "list registered experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *runList != "" {
		ids = strings.Split(*runList, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	failures := 0
	if *md {
		fmt.Println("| ID | Title | Verdict | Key numbers |")
		fmt.Println("|---|---|---|---|")
	}
	for _, id := range ids {
		res, err := experiments.Run(id, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			failures++
			continue
		}
		if !res.Verdict {
			failures++
		}
		if *md {
			printMarkdown(res)
		} else {
			fmt.Println(res)
			printSeries(res)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed to reproduce\n", failures)
		os.Exit(1)
	}
}

func printMarkdown(res experiments.Result) {
	verdict := "✅ reproduced"
	if !res.Verdict {
		verdict = "❌ mismatch"
	}
	var keys []string
	max := 4
	if len(res.Rows) < max {
		max = len(res.Rows)
	}
	for _, row := range res.Rows[:max] {
		keys = append(keys, fmt.Sprintf("%s = %.5g %s", row.Name, row.Value, row.Unit))
	}
	fmt.Printf("| %s | %s | %s | %s |\n", res.ID, res.Title, verdict, strings.Join(keys, "; "))
}

// printSeries renders any attached numeric series as unicode
// sparklines (F1's actual-vs-extrapolated trajectories).
func printSeries(res experiments.Result) {
	if len(res.Series) == 0 {
		return
	}
	labels := make([]string, 0, len(res.Series))
	for label := range res.Series {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, label := range labels {
		for _, v := range res.Series[label] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if !(hi > lo) {
		return
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	for _, label := range labels {
		var b strings.Builder
		for _, v := range res.Series[label] {
			idx := int((v - lo) / (hi - lo) * float64(len(bars)-1))
			b.WriteRune(bars[idx])
		}
		fmt.Printf("  %-14s %s\n", label, b.String())
	}
	fmt.Println()
}
