package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRequestsAbortOnContextCancel is the regression for the shell's
// context-free HTTP calls: client.Get/client.Post carried no context,
// so a hung server pinned the shell for the full five-minute client
// timeout and Ctrl-C could not abort an in-flight query. Both request
// paths must now unblock as soon as the context ends.
func TestRequestsAbortOnContextCancel(t *testing.T) {
	// The handler never responds until the client gives up, standing in
	// for a server stuck in a long Monte Carlo run.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read is armed and
		// the client disconnect cancels r.Context(); otherwise this
		// handler outlives the test and srv.Close hangs.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer srv.Close()

	sh := &shell{
		addr:   srv.URL,
		client: srv.Client(),
		tenant: "default",
		iters:  1,
		out:    io.Discard,
	}

	for _, tc := range []struct {
		name string
		call func(context.Context) error
	}{
		{"get", func(ctx context.Context) error {
			return sh.get(ctx, "/healthz")
		}},
		{"post", func(ctx context.Context) error {
			return sh.runSQL(ctx, "SELECT AVG(x) FROM t", false)
		}},
	} {
		call := tc.call
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			done := make(chan error, 1)
			go func() { done <- call(ctx) }()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("request against a hung server returned nil error")
				}
				if !strings.Contains(err.Error(), "context deadline exceeded") {
					t.Fatalf("want context deadline error, got: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("request did not abort when its context ended")
			}
		})
	}
}
