// Command mdshell is a line-oriented client for mcdbserver: type a
// scalar SELECT and it runs as a Monte Carlo query against the server,
// printing the sample-distribution summary. Backslash commands cover
// the rest of the service surface.
//
// Usage:
//
//	mdshell [-addr http://localhost:8080] [-tenant default]
//	        [-iters 200] [-seed 1] [-e "one statement"]
//
// Commands:
//
//	SELECT ...            run the statement once per Monte Carlo iteration
//	\explain SELECT ...   show the cost-based plan without executing
//	\set KEY VALUE        set iters, seed, workers, or tenant
//	\metrics              scrape the server's /metrics snapshot
//	\health               check /healthz
//	\q                    quit
//
// With -e the single statement runs non-interactively (exit status 1 on
// any error), which is how the CI smoke job drives it.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"modeldata/internal/server"
)

// shell holds the client state one session mutates with \set.
type shell struct {
	addr    string
	client  *http.Client
	tenant  string
	iters   int
	seed    uint64
	workers int
	out     io.Writer
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdshell: ")
	addr := flag.String("addr", "http://localhost:8080", "mcdbserver base URL")
	tenant := flag.String("tenant", "default", "tenant namespace")
	iters := flag.Int("iters", 200, "Monte Carlo iterations per query")
	seed := flag.Uint64("seed", 1, "request seed (namespaced per tenant by the server)")
	workers := flag.Int("workers", 0, "per-query worker budget (0 = server maximum)")
	oneShot := flag.String("e", "", "run one statement and exit")
	flag.Parse()

	sh := &shell{
		addr:    strings.TrimRight(*addr, "/"),
		client:  &http.Client{Timeout: 5 * time.Minute},
		tenant:  *tenant,
		iters:   *iters,
		seed:    *seed,
		workers: *workers,
		out:     os.Stdout,
	}
	// Every request the shell sends carries this context, so Ctrl-C
	// aborts an in-flight query instead of hanging until the client
	// timeout. The server cancels the corresponding Monte Carlo run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *oneShot != "" {
		if err := sh.dispatch(ctx, *oneShot); err != nil {
			log.Fatal(err)
		}
		return
	}
	sh.repl(ctx)
}

func (sh *shell) repl(ctx context.Context) {
	fmt.Fprintf(sh.out, "connected to %s (tenant %q, iters %d, seed %d); \\q quits\n",
		sh.addr, sh.tenant, sh.iters, sh.seed)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Fprint(sh.out, "mcdb> ")
		if !sc.Scan() {
			fmt.Fprintln(sh.out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\q` || line == `\quit` {
			return
		}
		if err := sh.dispatch(ctx, line); err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
		}
	}
}

// dispatch executes one input line.
func (sh *shell) dispatch(ctx context.Context, line string) error {
	switch {
	case strings.HasPrefix(line, `\explain `):
		return sh.runSQL(ctx, strings.TrimSpace(strings.TrimPrefix(line, `\explain `)), true)
	case strings.HasPrefix(line, `\set `):
		return sh.set(strings.Fields(strings.TrimPrefix(line, `\set `)))
	case line == `\metrics`:
		return sh.get(ctx, "/metrics")
	case line == `\health`:
		return sh.get(ctx, "/healthz")
	case strings.HasPrefix(line, `\`):
		return fmt.Errorf("unknown command %q", line)
	default:
		return sh.runSQL(ctx, line, false)
	}
}

func (sh *shell) set(kv []string) error {
	if len(kv) != 2 {
		return fmt.Errorf(`usage: \set iters|seed|workers|tenant VALUE`)
	}
	switch kv[0] {
	case "iters":
		n, err := strconv.Atoi(kv[1])
		if err != nil {
			return err
		}
		sh.iters = n
	case "seed":
		n, err := strconv.ParseUint(kv[1], 10, 64)
		if err != nil {
			return err
		}
		sh.seed = n
	case "workers":
		n, err := strconv.Atoi(kv[1])
		if err != nil {
			return err
		}
		sh.workers = n
	case "tenant":
		sh.tenant = kv[1]
	default:
		return fmt.Errorf("unknown setting %q", kv[0])
	}
	return nil
}

// runSQL posts one statement to /v1/sql and renders the answer.
func (sh *shell) runSQL(ctx context.Context, sql string, explain bool) error {
	req := server.SQLRequest{
		Tenant:     sh.tenant,
		SQL:        sql,
		Explain:    explain,
		Iterations: sh.iters,
		Seed:       sh.seed,
		Workers:    sh.workers,
	}
	var resp server.SQLResponse
	if err := sh.post(ctx, "/v1/sql", req, &resp); err != nil {
		return err
	}
	if explain {
		fmt.Fprint(sh.out, resp.Plan)
		return nil
	}
	su := resp.Summary
	fmt.Fprintf(sh.out, "n=%d mean=%.6g ± %.3g (95%% CI), var=%.4g, median=%.6g\n",
		su.N, su.Mean, su.CI95, su.Variance, su.Median)
	fmt.Fprintf(sh.out, "effective seed %d, %d shard(s), cached=%v\n",
		resp.EffectiveSeed, resp.Shards, resp.Cached)
	return nil
}

func (sh *shell) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := sh.client.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (%s)", e.Error, httpResp.Status)
		}
		return fmt.Errorf("server: %s", httpResp.Status)
	}
	return json.Unmarshal(data, resp)
}

// get fetches a text endpoint and prints it verbatim.
func (sh *shell) get(ctx context.Context, path string) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.addr+path, nil)
	if err != nil {
		return err
	}
	httpResp, err := sh.client.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s: %s", httpResp.Status, strings.TrimSpace(string(data)))
	}
	fmt.Fprint(sh.out, string(data))
	return nil
}
