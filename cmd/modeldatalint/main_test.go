package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modeldata/internal/lint"
	"modeldata/internal/lint/suite"
)

// writeModule lays down a one-package module under a temp dir and
// returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module lintcheck.test\n\ngo 1.22\n"}
	for name, content := range files {
		all[name] = content
	}
	for name, content := range all {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitCodeContract pins the 0/1/2 contract CI relies on: clean
// module, module with a diagnostic, unloadable pattern.
func TestExitCodeContract(t *testing.T) {
	clean := writeModule(t, map[string]string{
		"a.go": "package a\n\nfunc A() int { return 1 }\n",
	})
	dirty := writeModule(t, map[string]string{
		"a.go": "package a\n\nimport \"errors\"\n\nfunc fail() error { return errors.New(\"x\") }\n\nfunc A() { _ = fail() }\n",
	})

	cases := []struct {
		name string
		dir  string
		args []string
		want int
	}{
		{"clean module exits 0", clean, []string{"./..."}, 0},
		{"diagnostics exit 1", dirty, []string{"./..."}, 1},
		{"load failure exits 2", clean, []string{"./no/such/dir"}, 2},
		{"diff without fix exits 2", clean, []string{"-diff", "./..."}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.dir, tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestListFlag pins -list as a machine-readable roster: one analyzer
// name per line, in suite order, exit 0.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run(".", []string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-list) = %d, want 0; stderr: %s", got, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	all := suite.All()
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(all), stdout.String())
	}
	for i, a := range all {
		if lines[i] != a.Name {
			t.Errorf("-list line %d = %q, want %q", i, lines[i], a.Name)
		}
	}
}

// TestJSONRoundTrip runs -json over a module with known diagnostics and
// re-parses the SARIF from stdout: rule IDs, locations, and the
// suggested fix must survive the trip.
func TestJSONRoundTrip(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go": "package a\n\nimport \"errors\"\n\nfunc fail() error { return errors.New(\"x\") }\n\nfunc A() { _ = fail() }\n",
	})
	var stdout, stderr bytes.Buffer
	if got := run(dir, []string{"-json", "./..."}, &stdout, &stderr); got != 1 {
		t.Fatalf("run(-json) = %d, want 1; stderr: %s", got, stderr.String())
	}
	var log lint.SARIFLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("stdout is not valid SARIF JSON: %v\n%s", err, stdout.String())
	}
	if len(log.Runs) != 1 {
		t.Fatalf("SARIF has %d runs, want 1", len(log.Runs))
	}
	sr := log.Runs[0]
	if got, want := len(sr.Tool.Driver.Rules), len(suite.All()); got != want {
		t.Errorf("SARIF declares %d rules, want %d", got, want)
	}
	var errdropResult *lint.SARIFResult
	for i := range sr.Results {
		if sr.Results[i].RuleID == "errdrop" {
			errdropResult = &sr.Results[i]
		}
	}
	if errdropResult == nil {
		t.Fatalf("no errdrop result in SARIF output:\n%s", stdout.String())
	}
	if len(errdropResult.Locations) != 1 {
		t.Fatalf("errdrop result has %d locations, want 1", len(errdropResult.Locations))
	}
	loc := errdropResult.Locations[0].PhysicalLocation
	if filepath.Base(loc.ArtifactLocation.URI) != "a.go" || loc.Region.StartLine != 7 {
		t.Errorf("errdrop location = %s:%d, want a.go:7", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
	if errdropResult.Fix == nil || len(errdropResult.Fix.Edits) == 0 {
		t.Error("errdrop result lost its suggested fix in the round trip")
	}
}

// TestFixRewritesModule applies -fix to a module with a fixable
// diagnostic and verifies the rewrite lands and the module then lints
// clean.
func TestFixRewritesModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go": "package a\n\nimport \"errors\"\n\nfunc fail() error { return errors.New(\"x\") }\n\nfunc A() { _ = fail() }\n",
	})
	var stdout, stderr bytes.Buffer
	// The fix is applied, but the diagnostic was present on this run:
	// exit 1, matching gofmt-style "rerun to verify" usage.
	if got := run(dir, []string{"-fix", "./..."}, &stdout, &stderr); got != 1 {
		t.Fatalf("run(-fix) = %d, want 1; stderr: %s", got, stderr.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "log.Printf(\"ignored error: %v\", err)") {
		t.Fatalf("-fix did not rewrite the dropped error:\n%s", src)
	}
	stdout.Reset()
	stderr.Reset()
	if got := run(dir, []string{"./..."}, &stdout, &stderr); got != 0 {
		t.Errorf("module is not clean after -fix: exit %d\nstdout: %s", got, stdout.String())
	}
}

// TestFixDiffIsDryRun checks -fix -diff prints hunks without touching
// the file — the CI idempotency dry-run depends on this.
func TestFixDiffIsDryRun(t *testing.T) {
	content := "package a\n\nimport \"errors\"\n\nfunc fail() error { return errors.New(\"x\") }\n\nfunc A() { _ = fail() }\n"
	dir := writeModule(t, map[string]string{"a.go": content})
	var stdout, stderr bytes.Buffer
	if got := run(dir, []string{"-fix", "-diff", "./..."}, &stdout, &stderr); got != 1 {
		t.Fatalf("run(-fix -diff) = %d, want 1; stderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "-func A() { _ = fail() }") ||
		!strings.Contains(stdout.String(), "+func A() {") {
		t.Errorf("-fix -diff printed no hunk:\n%s", stdout.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != content {
		t.Errorf("-fix -diff modified the file:\n%s", src)
	}
}
