// Command modeldatalint statically enforces the repository's
// determinism and numeric-safety invariants. It is a multichecker over
// the analyzers in internal/lint/suite:
//
//	rngsource  no math/rand, crypto/rand, or time.Now() outside the allowlist
//	maporder   no map-iteration order leaking into results
//	floateq    no ==/!= on floats outside tolerance helpers
//	ctxplumb   long-running entry points plumb context.Context
//
// Usage:
//
//	go run ./cmd/modeldatalint ./...
//	go run ./cmd/modeldatalint -help
//
// It exits nonzero if any unsuppressed diagnostic remains; CI runs it
// as a blocking job. Intentional violations are suppressed in place:
//
//	//lint:allow <rule> <one-line reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"modeldata/internal/lint"
	"modeldata/internal/lint/suite"
)

func main() {
	help := flag.Bool("help", false, "describe each analyzer and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: modeldatalint [-help] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.All()
	if *help {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modeldatalint:", err)
		os.Exit(2)
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modeldatalint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "modeldatalint: %d unsuppressed diagnostic(s)\n", len(findings))
		os.Exit(1)
	}
}
