// Command modeldatalint statically enforces the repository's
// determinism, numeric-safety, and concurrency invariants. It is a
// multichecker over the analyzers in internal/lint/suite:
//
//	rngsource      no math/rand, crypto/rand, or time.Now() outside the allowlist
//	maporder       no map-iteration order leaking into results
//	floateq        no ==/!= on floats outside tolerance helpers
//	ctxplumb       long-running entry points plumb context.Context
//	spanleak       every obs.Start reaches End on all paths
//	lockguard      `// guarded by <mu>` fields accessed only under the lock
//	boundedgrowth  long-lived maps/slices route through internal/lru or document a bound
//	errdrop        no silently discarded errors
//	ctxhttp        HTTP calls thread a context and close response bodies
//
// Usage:
//
//	go run ./cmd/modeldatalint ./...
//	go run ./cmd/modeldatalint -json ./...        # SARIF on stdout
//	go run ./cmd/modeldatalint -fix ./...         # apply suggested fixes in place
//	go run ./cmd/modeldatalint -fix -diff ./...   # print the fixes without writing
//	go run ./cmd/modeldatalint -list              # analyzer names, one per line
//	go run ./cmd/modeldatalint -help
//
// Exit code contract, pinned by cmd/modeldatalint tests and relied on
// by CI: 0 when every package is clean, 1 when unsuppressed diagnostics
// remain, 2 when the packages could not be loaded at all. Intentional
// violations are suppressed in place:
//
//	//lint:allow <rule> <one-line reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"modeldata/internal/lint"
	"modeldata/internal/lint/suite"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment explicit, so the exit-code contract
// is testable in-process.
func run(dir string, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("modeldatalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	help := fs.Bool("help", false, "describe each analyzer and exit")
	list := fs.Bool("list", false, "print analyzer names, one per line, and exit")
	jsonOut := fs.Bool("json", false, "write findings as SARIF JSON to stdout")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source files")
	diff := fs.Bool("diff", false, "with -fix: print the rewrites instead of applying them")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: modeldatalint [-help] [-list] [-json] [-fix [-diff]] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := suite.All()
	if *help {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintln(stdout, a.Name)
		}
		return 0
	}
	if *diff && !*fix {
		fmt.Fprintln(stderr, "modeldatalint: -diff requires -fix")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "modeldatalint:", err)
		return 2
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "modeldatalint:", err)
		return 2
	}

	if *fix {
		if code, ok := applyFixes(findings, *diff, stdout, stderr); !ok {
			return code
		}
	}

	if *jsonOut {
		if err := lint.WriteSARIF(stdout, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "modeldatalint:", err)
			return 2
		}
	} else if !*fix || *diff {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "modeldatalint: %d unsuppressed diagnostic(s)\n", len(findings))
		return 1
	}
	return 0
}

// applyFixes computes every suggested fix and either rewrites the files
// in place or, with diff set, prints the rewrites as line hunks. It
// reports false with an exit code on failure.
func applyFixes(findings []lint.Finding, diff bool, stdout, stderr io.Writer) (int, bool) {
	fixed, err := lint.ApplyFixes(findings)
	if err != nil {
		fmt.Fprintln(stderr, "modeldatalint:", err)
		return 2, false
	}
	for _, name := range sortedKeys(fixed) {
		if diff {
			orig, err := os.ReadFile(name)
			if err != nil {
				fmt.Fprintln(stderr, "modeldatalint:", err)
				return 2, false
			}
			printDiff(stdout, name, orig, fixed[name])
			continue
		}
		if err := os.WriteFile(name, fixed[name], 0o644); err != nil {
			fmt.Fprintln(stderr, "modeldatalint:", err)
			return 2, false
		}
		fmt.Fprintf(stdout, "fixed %s\n", name)
	}
	return 0, true
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printDiff prints a single line-granular hunk per file: the common
// prefix and suffix are trimmed and the differing middle is shown as
// removed/added lines. The suggested fixes are localized rewrites, so
// one hunk per file reads well without a full diff algorithm.
func printDiff(w io.Writer, name string, orig, fixed []byte) {
	a := strings.Split(string(orig), "\n")
	b := strings.Split(string(fixed), "\n")
	start := 0
	for start < len(a) && start < len(b) && a[start] == b[start] {
		start++
	}
	endA, endB := len(a), len(b)
	for endA > start && endB > start && a[endA-1] == b[endB-1] {
		endA--
		endB--
	}
	fmt.Fprintf(w, "--- %s:%d\n", name, start+1)
	for _, line := range a[start:endA] {
		fmt.Fprintf(w, "-%s\n", line)
	}
	for _, line := range b[start:endB] {
		fmt.Fprintf(w, "+%s\n", line)
	}
}
