// Command mcdbcli is a small demonstration CLI for the Monte Carlo
// Database layer: it builds the paper's SBP_DATA stochastic table over
// a synthetic patient population and answers Monte Carlo queries about
// it from the command line.
//
// Usage:
//
//	mcdbcli [-patients 100] [-iters 1000] [-seed 1] [-threshold 140] [-p 0.99]
//	mcdbcli -sql "SELECT AVG(sbp_data.sbp) FROM sbp_data JOIN patients ON sbp_data.pid = patients.pid"
//	mcdbcli -sql "..." -explain
//
// It prints the estimated distribution of mean systolic blood pressure,
// the probability that an individual patient exceeds the threshold, and
// the MCDB-R style extreme quantile of the per-iteration hypertensive
// count. With -sql, it instead runs the given scalar SELECT once per
// Monte Carlo instantiation and summarizes the sample distribution;
// -explain additionally prints the cost-based query plan.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"modeldata/internal/engine"
	"modeldata/internal/experiments"
	"modeldata/internal/mcdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcdbcli: ")
	patients := flag.Int("patients", 100, "number of patients in the population")
	iters := flag.Int("iters", 1000, "Monte Carlo iterations")
	seed := flag.Uint64("seed", 1, "random seed")
	threshold := flag.Float64("threshold", 140, "hypertension threshold (mmHg)")
	p := flag.Float64("p", 0.99, "extreme quantile level for the risk query")
	sql := flag.String("sql", "", "scalar SELECT to run once per Monte Carlo instantiation")
	explain := flag.Bool("explain", false, "with -sql: print the cost-based query plan")
	flag.Parse()

	db, err := experiments.SBPDatabase(*patients)
	if err != nil {
		log.Fatal(err)
	}

	if *sql != "" {
		s := db.NewSession()
		if *explain {
			text, _, err := s.ExplainSQL(context.Background(), *sql)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(text)
		}
		samples, err := s.ExecSQL(context.Background(), *sql,
			mcdb.ExecOptions{Iterations: *iters, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		est, err := mcdb.Summarize(samples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query result over %d instantiations: %v\n", *iters, est)
		return
	}
	bundles, err := db.InstantiateBundled(*iters, *seed)
	if err != nil {
		log.Fatal(err)
	}
	bt := bundles["sbp_data"]

	means, err := bt.Estimate("sbp", engine.AggAvg, nil)
	if err != nil {
		log.Fatal(err)
	}
	est, err := mcdb.Summarize(means)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population mean SBP: %v\n", est)

	counts, err := bt.Estimate("sbp", engine.AggCount, func(det engine.Row, unc []float64) bool {
		return unc[0] > *threshold
	})
	if err != nil {
		log.Fatal(err)
	}
	countEst, err := mcdb.Summarize(counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypertensive patients (> %g mmHg): %v\n", *threshold, countEst)

	risk, err := mcdb.RiskQuantile(counts, *p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCDB-R %.2g-quantile of hypertensive count: %.1f patients\n", *p, risk)

	prob, err := mcdb.ThresholdProbability(counts, float64(*patients)/10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(more than 10%% of patients hypertensive) ≈ %.3f\n", prob)
}
