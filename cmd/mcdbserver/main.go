// Command mcdbserver serves the Monte Carlo Database over HTTP: a
// multi-tenant query service (internal/server) hosting one SBP fixture
// database per tenant, with per-tenant seed namespaces, admission
// control, a bounded result cache, sharded deterministic execution,
// and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	mcdbserver [-addr :8080] [-base-seed 1] [-shards 1] [-patients 100]
//	           [-max-inflight 32] [-tenant-inflight 8] [-trace]
//
// Endpoints (see internal/server.Handler):
//
//	POST /v1/query   structured aggregate query
//	POST /v1/sql     SQL query or EXPLAIN
//	GET  /metrics    metrics snapshot
//	GET  /debug/trace, /debug/pprof/*, /healthz
//
// Every tenant gets its own copy of the §2.1 blood-pressure fixture;
// what isolates tenants is the seed namespace and session state, which
// is the property the serving layer exists to demonstrate.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"modeldata/internal/experiments"
	"modeldata/internal/mcdb"
	"modeldata/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcdbserver: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	baseSeed := flag.Uint64("base-seed", 1, "base seed rooting per-tenant namespaces")
	shards := flag.Int("shards", 1, "backend shards per query")
	patients := flag.Int("patients", 100, "patients in each tenant's SBP fixture")
	maxInflight := flag.Int("max-inflight", server.DefaultMaxInFlight, "global in-flight query limit")
	tenantInflight := flag.Int("tenant-inflight", server.DefaultTenantMaxInFlight, "per-tenant in-flight query limit")
	maxWorkers := flag.Int("max-workers", server.DefaultMaxWorkers, "per-query worker budget cap")
	cacheCap := flag.Int("result-cache", server.DefaultResultCacheCap, "result cache capacity")
	trace := flag.Bool("trace", false, "collect spans for /debug/trace")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
	flag.Parse()

	srv := server.New(server.Config{
		BaseSeed:          *baseSeed,
		Shards:            *shards,
		MaxInFlight:       *maxInflight,
		TenantMaxInFlight: *tenantInflight,
		MaxWorkers:        *maxWorkers,
		ResultCacheCap:    *cacheCap,
		Trace:             *trace,
		Open: func(tenant string) (*mcdb.DB, error) {
			return experiments.SBPDatabase(*patients)
		},
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT start a drain: admission rejects new queries with
	// 503 while Shutdown waits (up to -drain-timeout) for in-flight
	// requests to finish. The base context is deliberately NOT tied to
	// the signal — that would cancel the very queries we are draining.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (shards=%d, base seed %d)", *addr, *shards, *baseSeed)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("draining (up to %s)...", *drainTimeout)
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	log.Printf("drained, bye")
	return nil
}
