package main

// The what-if delta workload: one expensive stochastic table, one
// declarative change, and the two ways to answer the changed query —
// re-realizing the whole table from scratch (a cold session over the
// changed database) versus lineage-driven delta re-realization over a
// warm session (mcdb.Session.ExecDelta). The recorded counters prove
// the delta path actually skipped clean iterations; benchjson exits
// non-zero when mcdb.delta_iters_skipped is zero, so the speedup
// number can never come from a run that silently recomputed
// everything.

import (
	"context"
	"fmt"
	"math"
	"os"

	"modeldata/internal/engine"
	"modeldata/internal/mcdb"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// deltaSpeedup pairs the from-scratch and delta timings of one
// what-if query.
type deltaSpeedup struct {
	Op      string  `json:"op"`
	Tuples  int     `json:"tuples"`
	Iters   int     `json:"iters"`
	FullNs  float64 `json:"full_ns_per_op"`
	DeltaNs float64 `json:"delta_ns_per_op"`
	Speedup float64 `json:"speedup"` // fullNs / deltaNs
}

const (
	whatIfTuples = 200
	whatIfIters  = 100
	// whatIfVGWork is the per-sample VG cost (inner draws), standing in
	// for the aggregation-query-parametrized VG functions of the E1
	// fixture — expensive enough that re-realization dominates.
	whatIfVGWork = 500
)

// whatIfDB builds the sensor fixture. limit, when positive, composes the
// what-if transform into the VG itself — the from-scratch baseline's
// way of answering the changed query.
func whatIfDB(capRegion int64, limit float64) (*mcdb.DB, error) {
	base := engine.NewDatabase()
	sensors := engine.MustNewTable("sensors", engine.Schema{
		{Name: "id", Type: engine.TypeInt},
		{Name: "region", Type: engine.TypeInt},
		{Name: "base", Type: engine.TypeFloat},
	})
	for i := 0; i < whatIfTuples; i++ {
		sensors.MustInsert(engine.Int(int64(i)), engine.Int(int64(i%4)),
			engine.Float(50+float64(i%11)))
	}
	base.Put(sensors)
	db := mcdb.New(base)
	err := db.AddSpec(&mcdb.TableSpec{
		Name: "readings",
		Schema: engine.Schema{
			{Name: "id", Type: engine.TypeInt},
			{Name: "region", Type: engine.TypeInt},
			{Name: "base", Type: engine.TypeFloat},
			{Name: "load", Type: engine.TypeFloat},
		},
		ForEach: "sensors",
		Params: func(db *engine.Database, outer engine.Row) (engine.Row, error) {
			return outer, nil
		},
		VG: func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
			mean := params[2].AsFloat()
			v := 0.0
			for i := 0; i < whatIfVGWork; i++ {
				v += r.Normal(mean, 4)
			}
			v /= whatIfVGWork
			if limit > 0 && params[1].AsInt() == capRegion {
				v = math.Min(v, limit)
			}
			return []engine.Value{engine.Float(v)}, nil
		},
		UncertainCols: []int{3},
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// runWhatIf measures the what-if pair and records the mcdb delta
// counters. The cap sits high enough that it binds in only some
// iterations, so a correct delta path must skip the rest — and the
// hard failure below catches a regression that dirties everything.
func runWhatIf(rep *report, seed uint64) error {
	const capRegion, limit = 0, 60.4
	q := mcdb.AggQuery{Table: "readings", Col: "load", Fn: engine.AggAvg}
	opts := mcdb.ExecOptions{Iterations: whatIfIters, Seed: seed}

	changed, err := whatIfDB(capRegion, limit)
	if err != nil {
		return err
	}
	baseDB, err := whatIfDB(0, 0)
	if err != nil {
		return err
	}
	stats := parallel.NewStats()
	ctx := parallel.WithStats(context.Background(), stats)

	// Warm session over the unchanged database: the state a server
	// holds when a what-if request arrives.
	warm := baseDB.NewSession()
	if _, err := warm.Exec(ctx, q, opts); err != nil {
		return err
	}
	d := mcdb.Delta{
		Table: "readings",
		Where: func(det engine.Row) bool { return det[1].AsInt() == capRegion },
		MapUnc: func(det engine.Row, unc []float64) {
			unc[0] = math.Min(unc[0], limit)
		},
	}
	// Bit-identity first: the delta answer must equal the from-scratch
	// answer before its timing means anything.
	want, err := changed.NewSession().Exec(ctx, q, opts)
	if err != nil {
		return err
	}
	got, err := warm.ExecDelta(ctx, q, opts, d)
	if err != nil {
		return err
	}
	for i := range want {
		if want[i] != got[i] { //lint:allow floateq bitwise identity is the delta-execution contract being asserted
			return fmt.Errorf("what-if delta diverges at iteration %d: %v != %v", i, got[i], want[i])
		}
	}

	mf := measure(fmt.Sprintf("BenchmarkWhatIf/tuples=%d/full", whatIfTuples), "WhatIf",
		whatIfTuples, "full", func() {
			// A fresh session forces full re-realization of the changed
			// table, expensive VG and all.
			if _, err := changed.NewSession().Exec(ctx, q, opts); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: whatif full: %v\n", err)
				os.Exit(1)
			}
		})
	md := measure(fmt.Sprintf("BenchmarkWhatIf/tuples=%d/delta", whatIfTuples), "WhatIf",
		whatIfTuples, "delta", func() {
			if _, err := warm.ExecDelta(ctx, q, opts, d); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: whatif delta: %v\n", err)
				os.Exit(1)
			}
		})
	rep.Benchmarks = append(rep.Benchmarks, mf, md)
	rep.WhatIf = append(rep.WhatIf, deltaSpeedup{
		Op: "AvgCapRegion", Tuples: whatIfTuples, Iters: whatIfIters,
		FullNs: mf.NsPerOp, DeltaNs: md.NsPerOp,
		Speedup: mf.NsPerOp / md.NsPerOp,
	})
	fmt.Fprintf(os.Stderr, "%-13s tuples=%-7d %12.0f ns/op (full) %12.0f ns/op (delta)  %.1fx\n",
		"WhatIf", whatIfTuples, mf.NsPerOp, md.NsPerOp, mf.NsPerOp/md.NsPerOp)

	if rep.Metrics == nil {
		rep.Metrics = map[string]int64{}
	}
	reg := stats.Registry()
	skipped := reg.Counter(mcdb.MetricDeltaItersSkipped).Value()
	rep.Metrics[mcdb.MetricDeltaItersSkipped] = skipped
	rep.Metrics[mcdb.MetricDeltaTuplesRerealized] = reg.Counter(mcdb.MetricDeltaTuplesRerealized).Value()
	if skipped == 0 {
		return fmt.Errorf("delta execution skipped nothing (%s = 0): every iteration was treated as dirty",
			mcdb.MetricDeltaItersSkipped)
	}
	return nil
}
