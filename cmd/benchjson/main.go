// Command benchjson runs the engine operator micro-benchmarks (row vs
// columnar, via internal/enginebench), the query-planner benchmarks
// (planner-off written join order vs planner-on cost-based order),
// the out-of-core storage benchmarks (zone-map-pruned scans and
// spill-to-disk joins/group-bys over 10⁷-row colstore segments), plus
// representative E-experiment end-to-end runs, and records ns/op,
// bytes/op, and allocs/op as JSON — the repository's perf trajectory
// file (BENCH_9.json). A non-blocking CI job runs the same workloads
// once as a smoke check.
//
// Timing comes from testing.Benchmark, so numbers are directly
// comparable with `go test -bench -benchmem ./internal/engine/`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modeldata/internal/enginebench"
	"modeldata/internal/experiments"
	"modeldata/internal/obs"
)

// measurement is one recorded benchmark.
type measurement struct {
	Name        string  `json:"name"`
	Op          string  `json:"op,omitempty"`
	Rows        int     `json:"rows,omitempty"`
	Variant     string  `json:"variant,omitempty"` // "row"/"col" for operators, "off"/"on" for planner
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// speedup pairs the row and columnar timings of one workload.
type speedup struct {
	Op          string  `json:"op"`
	Rows        int     `json:"rows"`
	Speedup     float64 `json:"speedup"`      // rowNs / colNs
	AllocsRatio float64 `json:"allocs_ratio"` // rowAllocs / colAllocs
}

// plannerSpeedup pairs the planner-off and planner-on timings of one
// join-heavy query.
type plannerSpeedup struct {
	Op      string  `json:"op"`
	Rows    int     `json:"rows"`
	OffNs   float64 `json:"off_ns_per_op"`
	OnNs    float64 `json:"on_ns_per_op"`
	Speedup float64 `json:"speedup"` // offNs / onNs
}

// oocSpeedup pairs the unoptimized and optimized timings of one
// out-of-core workload: full decode vs zone-map-pruned scan, or
// unlimited-memory hash vs budgeted Grace spill.
type oocSpeedup struct {
	Op      string  `json:"op"`
	Rows    int     `json:"rows"`
	BaseNs  float64 `json:"base_ns_per_op"`
	OptNs   float64 `json:"opt_ns_per_op"`
	Speedup float64 `json:"speedup"` // baseNs / optNs
}

type report struct {
	Benchmarks []measurement    `json:"benchmarks"`
	Speedups   []speedup        `json:"speedups"`
	Planner    []plannerSpeedup `json:"planner"`
	OutOfCore  []oocSpeedup     `json:"out_of_core,omitempty"`
	WhatIf     []deltaSpeedup   `json:"whatif,omitempty"`
	// Metrics holds the colstore.* counters accumulated across the
	// out-of-core runs (CI asserts pruning and spilling actually fired)
	// and the mcdb.delta_* counters of the what-if runs (CI asserts
	// clean iterations were actually skipped).
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

func measure(name, op string, rows int, variant string, fn func()) measurement {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return measurement{
		Name:        name,
		Op:          op,
		Rows:        rows,
		Variant:     variant,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	out := flag.String("o", "BENCH_9.json", "output path for the JSON report")
	seed := flag.Uint64("seed", 1, "seed for the E-experiment runs")
	skipExperiments := flag.Bool("engine-only", false, "skip the E-experiment end-to-end benchmarks")
	oocRows := flag.Int("ooc-rows", enginebench.OOCDefaultRows, "row count for the out-of-core benchmarks (0 skips them)")
	oocOnly := flag.Bool("ooc-only", false, "run only the out-of-core benchmarks (CI smoke)")
	whatIfOnly := flag.Bool("whatif-only", false, "run only the what-if delta benchmarks (CI smoke, writes BENCH_10.json)")
	flag.Parse()

	var rep report
	if !*oocOnly && !*whatIfOnly {
		runCoreBenchmarks(&rep, *seed, *skipExperiments)
	}
	if !*whatIfOnly && *oocRows > 0 {
		if err := runOutOfCore(&rep, *oocRows); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: out-of-core: %v\n", err)
			os.Exit(1)
		}
	}
	if !*oocOnly {
		if err := runWhatIf(&rep, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: what-if: %v\n", err)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func runCoreBenchmarks(rep *report, seed uint64, skipExperiments bool) {
	for _, w := range enginebench.Workloads() {
		mr := measure("BenchmarkEngine"+w.Op+"/rows="+fmt.Sprint(w.Rows)+"/row", w.Op, w.Rows, "row", w.Row)
		mc := measure("BenchmarkEngine"+w.Op+"/rows="+fmt.Sprint(w.Rows)+"/col", w.Op, w.Rows, "col", w.Col)
		rep.Benchmarks = append(rep.Benchmarks, mr, mc)
		sp := speedup{Op: w.Op, Rows: w.Rows, Speedup: mr.NsPerOp / mc.NsPerOp}
		if mc.AllocsPerOp > 0 {
			sp.AllocsRatio = float64(mr.AllocsPerOp) / float64(mc.AllocsPerOp)
		}
		rep.Speedups = append(rep.Speedups, sp)
		fmt.Fprintf(os.Stderr, "%-9s rows=%-7d %10.0f ns/op (row) %10.0f ns/op (col)  %.1fx\n",
			w.Op, w.Rows, mr.NsPerOp, mc.NsPerOp, sp.Speedup)
	}

	for _, w := range enginebench.PlannerWorkloads() {
		base := "BenchmarkPlanner" + w.Op + "/rows=" + fmt.Sprint(w.Rows)
		mo := measure(base+"/off", w.Op, w.Rows, "off", w.Off)
		mn := measure(base+"/on", w.Op, w.Rows, "on", w.On)
		rep.Benchmarks = append(rep.Benchmarks, mo, mn)
		rep.Planner = append(rep.Planner, plannerSpeedup{
			Op: w.Op, Rows: w.Rows,
			OffNs: mo.NsPerOp, OnNs: mn.NsPerOp,
			Speedup: mo.NsPerOp / mn.NsPerOp,
		})
		fmt.Fprintf(os.Stderr, "%-13s rows=%-7d %10.0f ns/op (off) %10.0f ns/op (on)   %.1fx\n",
			w.Op, w.Rows, mo.NsPerOp, mn.NsPerOp, mo.NsPerOp/mn.NsPerOp)
	}

	if !skipExperiments {
		for _, id := range []string{"E1", "E7"} {
			id := id
			m := measure("BenchmarkExperiment"+id, "", 0, "", func() {
				if _, err := experiments.Run(context.Background(), id, seed); err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", id, err)
					os.Exit(1)
				}
			})
			rep.Benchmarks = append(rep.Benchmarks, m)
			fmt.Fprintf(os.Stderr, "%-9s %27.0f ns/op\n", id, m.NsPerOp)
		}
	}
}

// runOutOfCore writes an n-row segment directory to a temp dir, runs
// the pruned-scan and spill workload pairs, and records the colstore
// counters so the report proves pruning and spilling happened.
func runOutOfCore(rep *report, rows int) error {
	dir, err := os.MkdirTemp("", "benchooc-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	segDir := filepath.Join(dir, "segs")
	fmt.Fprintf(os.Stderr, "building %d-row segment store under %s ...\n", rows, segDir)
	if err := enginebench.BuildOOCStore(segDir, rows, 0); err != nil {
		return err
	}
	workloads, err := enginebench.OOCWorkloads(segDir, rows, 1<<20, filepath.Join(dir, "spill"))
	if err != nil {
		return err
	}
	before := obs.Default().Snapshot()
	for _, w := range workloads {
		base := "BenchmarkOOC" + w.Op + "/rows=" + fmt.Sprint(w.Rows)
		mb := measure(base+"/base", w.Op, w.Rows, "base", w.Base)
		mo := measure(base+"/opt", w.Op, w.Rows, "opt", w.Opt)
		rep.Benchmarks = append(rep.Benchmarks, mb, mo)
		rep.OutOfCore = append(rep.OutOfCore, oocSpeedup{
			Op: w.Op, Rows: w.Rows,
			BaseNs: mb.NsPerOp, OptNs: mo.NsPerOp,
			Speedup: mb.NsPerOp / mo.NsPerOp,
		})
		fmt.Fprintf(os.Stderr, "%-13s rows=%-9d %12.0f ns/op (base) %12.0f ns/op (opt)  %.1fx\n",
			w.Op, w.Rows, mb.NsPerOp, mo.NsPerOp, mb.NsPerOp/mo.NsPerOp)
	}
	delta := obs.Default().Snapshot().Sub(before)
	rep.Metrics = map[string]int64{}
	for name, v := range delta.Counters {
		if strings.HasPrefix(name, "colstore.") {
			rep.Metrics[name] = v
		}
	}
	if rep.Metrics["colstore.blocks_pruned"] == 0 {
		return fmt.Errorf("zone maps pruned nothing (colstore.blocks_pruned = 0)")
	}
	if rep.Metrics["colstore.spill_partitions"] == 0 {
		return fmt.Errorf("no spill happened (colstore.spill_partitions = 0)")
	}
	return nil
}
