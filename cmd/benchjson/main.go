// Command benchjson runs the engine operator micro-benchmarks (row vs
// columnar, via internal/enginebench) plus representative E-experiment
// end-to-end runs, and records ns/op, bytes/op, and allocs/op as JSON —
// the repository's perf trajectory file (BENCH_4.json). A non-blocking
// CI job runs the same workloads once as a smoke check.
//
// Timing comes from testing.Benchmark, so numbers are directly
// comparable with `go test -bench -benchmem ./internal/engine/`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"modeldata/internal/enginebench"
	"modeldata/internal/experiments"
)

// measurement is one recorded benchmark.
type measurement struct {
	Name        string  `json:"name"`
	Op          string  `json:"op,omitempty"`
	Rows        int     `json:"rows,omitempty"`
	Variant     string  `json:"variant,omitempty"` // "row" or "col" for engine workloads
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// speedup pairs the row and columnar timings of one workload.
type speedup struct {
	Op          string  `json:"op"`
	Rows        int     `json:"rows"`
	Speedup     float64 `json:"speedup"`      // rowNs / colNs
	AllocsRatio float64 `json:"allocs_ratio"` // rowAllocs / colAllocs
}

type report struct {
	Benchmarks []measurement `json:"benchmarks"`
	Speedups   []speedup     `json:"speedups"`
}

func measure(name, op string, rows int, variant string, fn func()) measurement {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return measurement{
		Name:        name,
		Op:          op,
		Rows:        rows,
		Variant:     variant,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	out := flag.String("o", "BENCH_4.json", "output path for the JSON report")
	seed := flag.Uint64("seed", 1, "seed for the E-experiment runs")
	skipExperiments := flag.Bool("engine-only", false, "skip the E-experiment end-to-end benchmarks")
	flag.Parse()

	var rep report
	for _, w := range enginebench.Workloads() {
		mr := measure("BenchmarkEngine"+w.Op+"/rows="+fmt.Sprint(w.Rows)+"/row", w.Op, w.Rows, "row", w.Row)
		mc := measure("BenchmarkEngine"+w.Op+"/rows="+fmt.Sprint(w.Rows)+"/col", w.Op, w.Rows, "col", w.Col)
		rep.Benchmarks = append(rep.Benchmarks, mr, mc)
		sp := speedup{Op: w.Op, Rows: w.Rows, Speedup: mr.NsPerOp / mc.NsPerOp}
		if mc.AllocsPerOp > 0 {
			sp.AllocsRatio = float64(mr.AllocsPerOp) / float64(mc.AllocsPerOp)
		}
		rep.Speedups = append(rep.Speedups, sp)
		fmt.Fprintf(os.Stderr, "%-9s rows=%-7d %10.0f ns/op (row) %10.0f ns/op (col)  %.1fx\n",
			w.Op, w.Rows, mr.NsPerOp, mc.NsPerOp, sp.Speedup)
	}

	if !*skipExperiments {
		for _, id := range []string{"E1", "E7"} {
			id := id
			m := measure("BenchmarkExperiment"+id, "", 0, "", func() {
				if _, err := experiments.Run(context.Background(), id, *seed); err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", id, err)
					os.Exit(1)
				}
			})
			rep.Benchmarks = append(rep.Benchmarks, m)
			fmt.Fprintf(os.Stderr, "%-9s %27.0f ns/op\n", id, m.NsPerOp)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
