// Package modeldata is a Go reproduction of Peter J. Haas,
// "Model-Data Ecosystems: Challenges, Tools, and Trends" (PODS 2014).
//
// The paper surveys the emerging interplay between information
// management and stochastic simulation; this module implements every
// system the paper describes, organized as one package per subsystem
// under internal/ (see DESIGN.md for the full inventory):
//
//   - internal/mcdb, internal/simsql — Monte Carlo databases: VG
//     functions, tuple-bundle execution, database-valued Markov chains,
//     and the ABS-step-as-self-join (§2.1);
//   - internal/timeseries, internal/sgd, internal/mapreduce — Splash-
//     style data harmonization: time alignment, natural cubic splines,
//     and stratified distributed SGD with shuffle accounting (§2.2);
//   - internal/composite — loose model coupling with automatic mismatch
//     detection, plus the result-caching optimizer g(α), α* (§2.3);
//   - internal/indemics, internal/pdesmas — querying data during a
//     simulation: SQL-specified epidemic interventions and synchronized
//     range queries over unsynchronized agent processes (§2.4);
//   - internal/calibrate — MLE, method of moments, MSM with GᵀWG
//     objectives, Nelder-Mead, grid, and kriging-surrogate search
//     (§3.1);
//   - internal/assimilate, internal/wildfire — sequential Monte Carlo,
//     particle filtering (Algorithm 2), and wildfire data assimilation
//     with the sensor-aware KDE proposal (§3.2);
//   - internal/metamodel, internal/doe — polynomial and Gaussian-
//     process metamodels, factorial and Latin hypercube designs, and
//     sequential bifurcation screening (§4);
//   - internal/engine, internal/rng, internal/linalg, internal/stats,
//     internal/gridfield — the substrates everything rests on.
//
// This root package is a thin facade over internal/experiments: every
// figure and quantitative claim of the paper is a registered,
// reproducible experiment. Run them all with:
//
//	go run ./cmd/experiments
//
// or individually via Run with functional options:
//
//	res, err := modeldata.Run(ctx, "E1",
//		modeldata.WithSeed(1),
//		modeldata.WithWorkers(8),
//		modeldata.WithProgress(func(done, total int) { ... }))
//
// Every Monte Carlo hot loop fans out over internal/parallel, a
// deterministic runtime whose results are bit-identical to sequential
// execution at any worker count (one pre-split random substream per
// iteration index — see DESIGN.md). The benchmarks in bench_test.go
// regenerate one experiment per paper artifact.
package modeldata

import "modeldata/internal/experiments"

// ExperimentResult is the outcome of one reproduced figure or claim.
type ExperimentResult = experiments.Result

// Row is one reported number of an ExperimentResult.
type Row = experiments.Row

// ExperimentIDs lists the registered experiments (F1–F5 for the
// paper's figures, E1–E13 for its quantitative claims) in display
// order.
func ExperimentIDs() []string { return experiments.IDs() }
