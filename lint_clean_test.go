package modeldata_test

// The repository's own determinism, numeric-safety, and concurrency
// lint suite, run over the whole module as a test. This is the
// programmatic twin of `go run ./cmd/modeldatalint ./...`: any
// unsuppressed diagnostic from the nine analyzers fails the build. New
// code either satisfies the invariants or carries an explicit
// `//lint:allow <rule> <reason>` justification reviewers can see.

import (
	"testing"

	"modeldata/internal/lint"
	"modeldata/internal/lint/suite"
)

// TestSuiteComplete pins the analyzer roster: the sweep below only
// proves cleanliness for rules that actually ran, so a rule silently
// dropped from the suite would otherwise un-enforce its invariant
// without any test noticing.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"ctxplumb", "floateq", "maporder", "rngsource",
		"boundedgrowth", "ctxhttp", "errdrop", "lockguard", "spanleak",
	}
	all := suite.All()
	if len(all) != len(want) {
		t.Fatalf("suite.All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("suite.All()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}

func TestRepositoryLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lint sweep type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := lint.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	findings, err := lint.RunAnalyzers(pkgs, suite.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s: [%s] %s", f.Position, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		t.Logf("%d unsuppressed diagnostics; fix the code or add `//lint:allow <rule> <reason>` where the exact behavior is intentional", len(findings))
	}
}
