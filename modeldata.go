package modeldata

import (
	"context"
	"time"

	"modeldata/internal/experiments"
	"modeldata/internal/parallel"
)

// DefaultSeed is the master seed used when WithSeed is not supplied —
// the paper's publication date, as everywhere else in this repo.
const DefaultSeed uint64 = 20140622

// Stats reports what one Run did: iterations completed across every
// parallel loop the experiment executed, estimated bytes moved through
// MapReduce shuffles, fault-tolerance activity (task attempts, retries,
// speculative backups, cumulative backoff), wall-clock time, and the
// resulting throughput. The fault-tolerance counters stay zero unless
// WithRetries/WithSpeculation enable the machinery or a fault injector
// is installed on the context.
type Stats struct {
	Iterations          int64
	ShuffleBytes        int64
	TaskAttempts        int64
	Retries             int64
	SpeculativeLaunches int64
	SpeculativeWins     int64
	BackoffTime         time.Duration
	Elapsed             time.Duration
	SamplesPerSec       float64
}

// config collects the options applied to one Run.
type config struct {
	seed       uint64
	workers    int
	progress   func(done, total int)
	stats      *Stats
	maxRetries int
	specFactor float64
}

// Option configures a Run call.
type Option func(*config)

// WithSeed sets the master random seed (default DefaultSeed). Equal
// seeds give bit-identical results at any worker count.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithWorkers bounds the parallelism of every Monte Carlo loop inside
// the experiment. Zero or negative means GOMAXPROCS. The worker count
// affects wall-clock time only, never the numbers produced.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithProgress registers a callback invoked as parallel loops complete
// iterations, with the completed and total counts of the current loop.
// Calls are serialized; the callback must not block for long.
func WithProgress(fn func(done, total int)) Option {
	return func(c *config) { c.progress = fn }
}

// WithStats asks Run to fill *dst with per-run counters (iterations,
// shuffle bytes, fault-tolerance activity, elapsed time, samples/sec)
// when it returns.
func WithStats(dst *Stats) Option {
	return func(c *config) { c.stats = dst }
}

// WithRetries grants every task in the run (MapReduce map/reduce tasks,
// parallel Monte Carlo iterations) a retry budget of n re-runs with
// exponential backoff before a failure aborts the experiment. Results
// are unchanged by retries: tasks replay their pre-split random
// substreams, so a run that survives faults is bit-identical to a
// failure-free run.
func WithRetries(n int) Option {
	return func(c *config) { c.maxRetries = n }
}

// WithSpeculation enables straggler mitigation in the MapReduce
// runtime: a task running longer than factor × the stage's median task
// time gets one speculative backup attempt, and the first result wins.
// Speculation affects wall-clock time and the Stats counters only,
// never the numbers produced.
func WithSpeculation(factor float64) Option {
	return func(c *config) { c.specFactor = factor }
}

// Run executes one experiment by ID. Cancellation of ctx aborts the
// experiment promptly with ctx.Err(); options configure the seed,
// worker bound, progress reporting, and stats collection. Results are
// deterministic in (id, seed) alone — see DESIGN.md for the substream
// determinism contract.
func Run(ctx context.Context, id string, opts ...Option) (ExperimentResult, error) {
	cfg := config{seed: DefaultSeed}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers > 0 {
		ctx = parallel.WithWorkers(ctx, cfg.workers)
	}
	if cfg.progress != nil {
		ctx = parallel.WithProgress(ctx, cfg.progress)
	}
	if cfg.maxRetries > 0 || cfg.specFactor > 0 {
		ctx = parallel.WithRetryPolicy(ctx, parallel.RetryPolicy{
			MaxRetries:        cfg.maxRetries,
			SpeculativeFactor: cfg.specFactor,
		})
	}
	var ps *parallel.Stats
	if cfg.stats != nil {
		ps = parallel.NewStats()
		ctx = parallel.WithStats(ctx, ps)
	}
	res, err := experiments.Run(ctx, id, cfg.seed)
	if cfg.stats != nil {
		snap := ps.Snapshot()
		*cfg.stats = Stats{
			Iterations:          snap.Iterations,
			ShuffleBytes:        snap.ShuffleBytes,
			TaskAttempts:        snap.TaskAttempts,
			Retries:             snap.Retries,
			SpeculativeLaunches: snap.SpeculativeLaunches,
			SpeculativeWins:     snap.SpeculativeWins,
			BackoffTime:         snap.BackoffTime,
			Elapsed:             snap.Elapsed,
			SamplesPerSec:       snap.SamplesPerSec,
		}
	}
	return res, err
}

// RunExperiment executes one experiment by ID with the given seed.
//
// Deprecated: use Run, which adds cancellation, worker bounds,
// progress reporting, and stats collection via options.
func RunExperiment(id string, seed uint64) (ExperimentResult, error) {
	return Run(context.Background(), id, WithSeed(seed))
}
