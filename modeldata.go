package modeldata

import (
	"context"
	"fmt"
	"strings"
	"time"

	"modeldata/internal/engine"
	"modeldata/internal/experiments"
	"modeldata/internal/mcdb"
	"modeldata/internal/obs"
	"modeldata/internal/parallel"
)

// DefaultSeed is the master seed used when WithSeed is not supplied —
// the paper's publication date, as everywhere else in this repo.
const DefaultSeed uint64 = 20140622

// Stats reports what one Run did: iterations completed across every
// parallel loop the experiment executed, estimated bytes moved through
// MapReduce shuffles, fault-tolerance activity (task attempts, retries,
// speculative backups, cumulative backoff), wall-clock time, and the
// resulting throughput. The fault-tolerance counters stay zero unless
// WithRetries/WithSpeculation enable the machinery or a fault injector
// is installed on the context.
type Stats struct {
	Iterations          int64
	ShuffleBytes        int64
	TaskAttempts        int64
	Retries             int64
	SpeculativeLaunches int64
	SpeculativeWins     int64
	BackoffTime         time.Duration
	Elapsed             time.Duration
	SamplesPerSec       float64

	// Engine activity attributed to this run. The relational engine's
	// query paths carry no context, so these come from diffing the
	// process-global registry (obs.Default) around the run; concurrent
	// Runs in one process see each other's engine activity here.
	RowsScanned        int64
	ColumnarQueries    int64
	ColumnarFallbacks  int64
	RealizeCacheHits   int64
	RealizeCacheMisses int64

	// Metrics is the full per-run metric snapshot (every counter, gauge,
	// and histogram reported during the run, merged with the engine's
	// global-registry delta), keyed by the DESIGN.md §8 metric names.
	Metrics obs.Snapshot
}

// Report renders the stats as a human-readable multi-line run report.
func (s Stats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run report\n")
	fmt.Fprintf(&b, "  elapsed          %s\n", s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  iterations       %d (%.4g/s)\n", s.Iterations, s.SamplesPerSec)
	fmt.Fprintf(&b, "  rows scanned     %d\n", s.RowsScanned)
	fmt.Fprintf(&b, "  columnar path    %d queries, %d fallbacks to rows\n", s.ColumnarQueries, s.ColumnarFallbacks)
	fmt.Fprintf(&b, "  realize cache    %d hits, %d misses\n", s.RealizeCacheHits, s.RealizeCacheMisses)
	fmt.Fprintf(&b, "  shuffle          %d bytes\n", s.ShuffleBytes)
	fmt.Fprintf(&b, "  task attempts    %d (%d retries, backoff %s)\n",
		s.TaskAttempts, s.Retries, s.BackoffTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "  speculation      %d launched, %d won\n", s.SpeculativeLaunches, s.SpeculativeWins)
	if len(s.Metrics.Counters)+len(s.Metrics.Gauges)+len(s.Metrics.Histograms) > 0 {
		b.WriteString("  metrics:\n")
		for _, line := range strings.Split(s.Metrics.String(), "\n") {
			if line != "" {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	return b.String()
}

// config collects the options applied to one Run.
type config struct {
	seed       uint64
	workers    int
	progress   func(done, total int)
	stats      *Stats
	maxRetries int
	specFactor float64
	tracer     *obs.Tracer
	chaosProb  float64
	chaosSeed  uint64
}

// Option configures a Run call.
type Option func(*config)

// WithSeed sets the master random seed (default DefaultSeed). Equal
// seeds give bit-identical results at any worker count.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithWorkers bounds the parallelism of every Monte Carlo loop inside
// the experiment. Zero or negative means GOMAXPROCS. The worker count
// affects wall-clock time only, never the numbers produced.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithProgress registers a callback invoked as parallel loops complete
// iterations, with the completed and total counts of the current loop.
// Calls are serialized; the callback must not block for long.
func WithProgress(fn func(done, total int)) Option {
	return func(c *config) { c.progress = fn }
}

// WithStats asks Run to fill *dst with per-run counters (iterations,
// shuffle bytes, fault-tolerance activity, elapsed time, samples/sec)
// when it returns.
func WithStats(dst *Stats) Option {
	return func(c *config) { c.stats = dst }
}

// WithTracer records a hierarchical span for every traced operation of
// the run (experiment → Monte Carlo loops → MapReduce stages → task
// attempts) into tr. After Run returns, tr.Snapshot() holds the span
// tree and tr.WriteChromeTraceFile exports it for chrome://tracing /
// Perfetto. Tracing never changes the numbers produced — spans carry
// wall-clock timing only.
func WithTracer(tr *obs.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// WithChaos installs a deterministic fault injector that panics each
// task attempt independently with probability prob, derived from the
// attempt's (stage, index, attempt) coordinates and seed. Combined with
// WithRetries it exercises the fault-tolerance path: a surviving run is
// bit-identical to a failure-free one. Zero prob is a no-op.
func WithChaos(prob float64, seed uint64) Option {
	return func(c *config) { c.chaosProb, c.chaosSeed = prob, seed }
}

// WithRetries grants every task in the run (MapReduce map/reduce tasks,
// parallel Monte Carlo iterations) a retry budget of n re-runs with
// exponential backoff before a failure aborts the experiment. Results
// are unchanged by retries: tasks replay their pre-split random
// substreams, so a run that survives faults is bit-identical to a
// failure-free run.
func WithRetries(n int) Option {
	return func(c *config) { c.maxRetries = n }
}

// WithSpeculation enables straggler mitigation in the MapReduce
// runtime: a task running longer than factor × the stage's median task
// time gets one speculative backup attempt, and the first result wins.
// Speculation affects wall-clock time and the Stats counters only,
// never the numbers produced.
func WithSpeculation(factor float64) Option {
	return func(c *config) { c.specFactor = factor }
}

// Run executes one experiment by ID. Cancellation of ctx aborts the
// experiment promptly with ctx.Err(); options configure the seed,
// worker bound, progress reporting, and stats collection. Results are
// deterministic in (id, seed) alone — see DESIGN.md for the substream
// determinism contract.
func Run(ctx context.Context, id string, opts ...Option) (ExperimentResult, error) {
	cfg := config{seed: DefaultSeed}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers > 0 {
		ctx = parallel.WithWorkers(ctx, cfg.workers)
	}
	if cfg.progress != nil {
		ctx = parallel.WithProgress(ctx, cfg.progress)
	}
	if cfg.maxRetries > 0 || cfg.specFactor > 0 {
		ctx = parallel.WithRetryPolicy(ctx, parallel.RetryPolicy{
			MaxRetries:        cfg.maxRetries,
			SpeculativeFactor: cfg.specFactor,
		})
	}
	if cfg.chaosProb > 0 {
		ctx = parallel.WithFaultInjector(ctx, parallel.PanicInjector{
			Prob: cfg.chaosProb,
			Seed: cfg.chaosSeed,
		})
	}
	if cfg.tracer != nil {
		ctx = obs.WithTracer(ctx, cfg.tracer)
	}
	var ps *parallel.Stats
	var global0 obs.Snapshot
	if cfg.stats != nil {
		ps = parallel.NewStats()
		ctx = parallel.WithStats(ctx, ps)
		global0 = obs.Default().Snapshot()
	}
	res, err := experiments.Run(ctx, id, cfg.seed)
	if cfg.stats != nil {
		snap := ps.Snapshot()
		// Engine metrics report into the process-global registry (the
		// query paths carry no context); the delta around the run
		// attributes them to it.
		delta := obs.Default().Snapshot().Sub(global0)
		run := ps.Registry().Snapshot()
		*cfg.stats = Stats{
			Iterations:          snap.Iterations,
			ShuffleBytes:        snap.ShuffleBytes,
			TaskAttempts:        snap.TaskAttempts,
			Retries:             snap.Retries,
			SpeculativeLaunches: snap.SpeculativeLaunches,
			SpeculativeWins:     snap.SpeculativeWins,
			BackoffTime:         snap.BackoffTime,
			Elapsed:             snap.Elapsed,
			SamplesPerSec:       snap.SamplesPerSec,
			RowsScanned:         delta.Counters[engine.MetricRowsScanned],
			ColumnarQueries:     delta.Counters[engine.MetricColQueries],
			ColumnarFallbacks:   delta.Counters[engine.MetricColFallback],
			RealizeCacheHits:    run.Counters[mcdb.MetricRealizeCacheHits],
			RealizeCacheMisses:  run.Counters[mcdb.MetricRealizeCacheMisses],
			Metrics:             run.Merge(delta),
		}
	}
	return res, err
}
