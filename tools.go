//go:build tools

// Package tools anchors build-time tool dependencies so `go mod tidy`
// keeps them pinned once they are available.
//
// The lint suite (internal/lint, cmd/modeldatalint) would normally sit
// on golang.org/x/tools/go/analysis and be anchored here as
//
//	import (
//		_ "golang.org/x/tools/go/analysis"
//		_ "golang.org/x/tools/go/analysis/multichecker"
//		_ "golang.org/x/tools/go/analysis/analysistest"
//	)
//
// with a matching require in go.mod. This build environment is
// hermetic — the x/tools module is not in the module cache and network
// fetches are disabled — so the suite is implemented directly on the
// standard library's go/ast + go/types (see DESIGN.md §6) and the pin
// stays commented until the dependency can actually be vendored.
// cmd/modeldatalint deliberately mirrors the multichecker contract
// (one binary, all analyzers, exit 1 on any diagnostic) so the swap is
// mechanical.
package tools
