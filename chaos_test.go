package modeldata_test

// The fault-tolerance half of the determinism contract, verified end to
// end through the public facade: an experiment run under injected task
// crashes and straggler latency must report numbers bit-identical to
// the failure-free run at any worker count, because failed attempts
// discard their partial state and retries replay the task's pre-split
// random substream.

import (
	"context"
	"errors"
	"testing"
	"time"

	"modeldata"
	"modeldata/internal/parallel"
)

// chaosInjector is the standard chaos mix: ~20% of attempts crash,
// ~10% stall. Decisions hash from the attempt identity, so the same
// attempts fail at every worker count.
func chaosInjector(seed uint64) parallel.FaultInjector {
	return parallel.Chain{
		parallel.PanicInjector{Prob: 0.2, Seed: seed},
		parallel.LatencyInjector{Prob: 0.1, Delay: 200 * time.Microsecond, Seed: seed + 1},
	}
}

// TestRunDeterministicUnderFaults compares a chaos run of the Splash
// time-alignment experiment (E4, MapReduce-backed) against the clean
// run, exactly, at workers 1, 2, and 8.
func TestRunDeterministicUnderFaults(t *testing.T) {
	clean, err := modeldata.Run(context.Background(), "E4", modeldata.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sawAttempts := false
	for _, w := range workerCounts {
		ctx := parallel.WithFaultInjector(context.Background(), chaosInjector(17))
		var st modeldata.Stats
		res, err := modeldata.Run(ctx, "E4",
			modeldata.WithSeed(3),
			modeldata.WithWorkers(w),
			modeldata.WithRetries(8),
			modeldata.WithStats(&st))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(res.Rows) != len(clean.Rows) {
			t.Fatalf("workers=%d: %d rows vs %d", w, len(res.Rows), len(clean.Rows))
		}
		for i := range res.Rows {
			if res.Rows[i] != clean.Rows[i] {
				t.Fatalf("workers=%d row %d: %+v vs %+v", w, i, res.Rows[i], clean.Rows[i])
			}
		}
		if st.TaskAttempts > 0 {
			sawAttempts = true
		}
		if st.Retries > 0 && st.BackoffTime <= 0 {
			t.Fatalf("workers=%d: retries without backoff: %+v", w, st)
		}
	}
	if !sawAttempts {
		t.Fatal("no run recorded task attempts — fault machinery not engaged")
	}
}

// TestRunWithSpeculationUnchanged verifies speculation is invisible in
// the numbers: the same experiment with straggler mitigation enabled
// reports the clean results.
func TestRunWithSpeculationUnchanged(t *testing.T) {
	clean, err := modeldata.Run(context.Background(), "E4", modeldata.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := parallel.WithFaultInjector(context.Background(),
		parallel.LatencyInjector{Prob: 0.1, Delay: time.Millisecond, Seed: 5})
	var st modeldata.Stats
	res, err := modeldata.Run(ctx, "E4",
		modeldata.WithSeed(3),
		modeldata.WithWorkers(8),
		modeldata.WithRetries(2),
		modeldata.WithSpeculation(3),
		modeldata.WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != clean.Rows[i] {
			t.Fatalf("row %d: %+v vs %+v", i, res.Rows[i], clean.Rows[i])
		}
	}
	if st.SpeculativeWins > st.SpeculativeLaunches {
		t.Fatalf("wins %d exceed launches %d", st.SpeculativeWins, st.SpeculativeLaunches)
	}
}

// TestRunExhaustedRetriesSurfaceError pins the failure mode: an
// injector nothing can outlast aborts the run with the injected fault
// visible in the chain.
func TestRunExhaustedRetriesSurfaceError(t *testing.T) {
	ctx := parallel.WithFaultInjector(context.Background(),
		parallel.PanicInjector{Prob: 1, Seed: 1})
	_, err := modeldata.Run(ctx, "E4", modeldata.WithSeed(3), modeldata.WithRetries(1))
	if err == nil {
		t.Fatal("run survived Prob=1 crashes")
	}
	if !errors.Is(err, parallel.ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault in chain", err)
	}
}
