package modeldata_test

// End-to-end acceptance of the observability layer through the public
// facade: tracing an experiment yields a Chrome-trace span tree at
// least three levels deep, the run report carries nonzero activity
// counters under chaos injection, and — the invariant everything else
// bends around — tracing and metrics never change the numbers an
// experiment produces.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modeldata"
	"modeldata/internal/obs"
)

// chromeTrace mirrors the JSON shape emitted by WriteChromeTrace.
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Args struct {
			ID     string `json:"span.id"`
			Parent string `json:"span.parent"`
		} `json:"args"`
	} `json:"traceEvents"`
}

// runTraced runs one experiment with tracing, stats, and deterministic
// chaos (paired with a retry budget so the run survives), returning the
// tracer and the collected stats.
func runTraced(t *testing.T, id string, workers int) (*obs.Tracer, modeldata.Stats) {
	t.Helper()
	tracer := obs.NewTracer()
	var st modeldata.Stats
	res, err := modeldata.Run(context.Background(), id,
		modeldata.WithSeed(3),
		modeldata.WithWorkers(workers),
		modeldata.WithTracer(tracer),
		modeldata.WithChaos(0.1, 17),
		modeldata.WithRetries(8),
		modeldata.WithStats(&st))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if !res.Verdict {
		t.Fatalf("%s: verdict flipped under tracing+chaos", id)
	}
	return tracer, st
}

// TestTraceDepthAndChromeExport checks the tentpole acceptance: tracing
// E1 (MCDB bundles) and E4 (MapReduce time alignment) produces a span
// tree of depth ≥ 3 whose Chrome-trace export is valid JSON with
// resolvable parent links.
func TestTraceDepthAndChromeExport(t *testing.T) {
	for _, id := range []string{"E1", "E4"} {
		tracer, _ := runTraced(t, id, 4)
		if d := tracer.MaxDepth(); d < 3 {
			t.Fatalf("%s: span tree depth %d, want ≥ 3", id, d)
		}
		spans := tracer.Snapshot()
		if len(spans) == 0 {
			t.Fatalf("%s: no spans recorded", id)
		}
		sawRoot := false
		for _, s := range spans {
			if s.Name == "experiment."+id {
				sawRoot = true
			}
			if s.End.Before(s.Start) {
				t.Fatalf("%s: span %q ends before it starts", id, s.Name)
			}
		}
		if !sawRoot {
			t.Fatalf("%s: no experiment root span", id)
		}

		path := filepath.Join(t.TempDir(), "trace.json")
		if err := tracer.WriteChromeTraceFile(path); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var tr chromeTrace
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("%s: trace is not valid JSON: %v", id, err)
		}
		if len(tr.TraceEvents) != len(spans) {
			t.Fatalf("%s: %d trace events for %d spans", id, len(tr.TraceEvents), len(spans))
		}
		ids := make(map[string]bool, len(tr.TraceEvents))
		for _, ev := range tr.TraceEvents {
			if ev.Ph != "X" {
				t.Fatalf("%s: event %q has phase %q, want complete (X)", id, ev.Name, ev.Ph)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("%s: event %q has negative ts/dur", id, ev.Name)
			}
			ids[ev.Args.ID] = true
		}
		for _, ev := range tr.TraceEvents {
			if ev.Args.Parent != "0" && !ids[ev.Args.Parent] {
				t.Fatalf("%s: event %q has dangling parent %s", id, ev.Name, ev.Args.Parent)
			}
		}
	}
}

// TestRunReportNonzeroUnderChaos checks the run-report acceptance: a
// chaotic E1 shows retry activity and MCDB columnar queries, a chaotic
// E4 shows shuffle traffic, and the rendered report carries them.
func TestRunReportNonzeroUnderChaos(t *testing.T) {
	_, st1 := runTraced(t, "E1", 4)
	if st1.Retries == 0 || st1.TaskAttempts == 0 {
		t.Fatalf("E1 chaos run recorded no retry activity: %+v", st1)
	}
	if st1.BackoffTime <= 0 {
		t.Fatalf("E1 retries without backoff: %+v", st1)
	}
	if st1.ColumnarQueries == 0 {
		t.Fatalf("E1 recorded no columnar engine activity: %+v", st1)
	}
	_, st4 := runTraced(t, "E4", 4)
	if st4.ShuffleBytes == 0 {
		t.Fatalf("E4 recorded no shuffle bytes: %+v", st4)
	}
	report := st4.Report()
	for _, want := range []string{"iterations", "shuffle", "task attempts", "mapreduce.shuffle_bytes"} {
		if !strings.Contains(report, want) {
			t.Fatalf("run report lacks %q:\n%s", want, report)
		}
	}
	// Registry view and struct fields agree on the shuffle volume.
	if got := st4.Metrics.Counters["mapreduce.shuffle_bytes"]; got != st4.ShuffleBytes {
		t.Fatalf("Metrics snapshot shuffle=%d, Stats field=%d", got, st4.ShuffleBytes)
	}
}

// timingRow reports whether a result row carries wall-clock-derived
// values (E1's measured wall times and their speedup ratio), which are
// legitimately run-to-run variable and excluded from bit-exact
// comparison — exactly as EXPERIMENTS.md treats them.
func timingRow(r modeldata.Row) bool {
	return r.Unit == "s" || r.Unit == "×"
}

// TestRunDeterministicUnderTracing is the guardrail: verdicts and every
// non-timing number are bit-identical with and without tracing, at
// workers 1, 2, and 8.
func TestRunDeterministicUnderTracing(t *testing.T) {
	for _, id := range []string{"E1", "E4"} {
		clean, err := modeldata.Run(context.Background(), id, modeldata.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			tracer := obs.NewTracer()
			var st modeldata.Stats
			res, err := modeldata.Run(context.Background(), id,
				modeldata.WithSeed(3),
				modeldata.WithWorkers(w),
				modeldata.WithTracer(tracer),
				modeldata.WithStats(&st))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, w, err)
			}
			if res.Verdict != clean.Verdict || len(res.Rows) != len(clean.Rows) {
				t.Fatalf("%s workers=%d: shape changed under tracing", id, w)
			}
			for i := range res.Rows {
				if timingRow(clean.Rows[i]) {
					continue
				}
				if res.Rows[i] != clean.Rows[i] {
					t.Fatalf("%s workers=%d row %d: %+v vs %+v", id, w, i, res.Rows[i], clean.Rows[i])
				}
			}
			if len(tracer.Snapshot()) == 0 {
				t.Fatalf("%s workers=%d: tracer saw no spans", id, w)
			}
		}
	}
}
