package modeldata_test

// Speedup benchmarks for the deterministic parallel runtime: the same
// Monte Carlo workload at worker counts 1 vs NumCPU must produce
// identical numbers, differing only in wall-clock time. Compare with
//
//	go test -bench 'MCDBMonteCarlo|FilterStepWorkers' -benchtime 3x
//
// On a machine with ≥4 cores the workers=N variants should run ≥2×
// faster than workers=1 (EXPERIMENTS.md records a sample run); on
// fewer cores the parallel variants are skipped since there is no
// speedup to measure.

import (
	"context"
	"runtime"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/experiments"
)

func benchMCDBMonteCarlo(b *testing.B, workers int) {
	if workers > 1 && runtime.NumCPU() < 4 {
		b.Skipf("NumCPU = %d < 4: no parallel speedup to measure", runtime.NumCPU())
	}
	db, err := experiments.SBPDatabase(400)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := db.MonteCarlo(context.Background(), 200, 1, workers,
			func(inst *engine.Database) (float64, error) {
				tbl, err := inst.Get("sbp_data")
				if err != nil {
					return 0, err
				}
				return engine.From(tbl).
					GroupBy(nil, engine.Aggregate{Fn: engine.AggAvg, Col: "sbp", As: "m"}).
					ScalarFloat()
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCDBMonteCarloWorkers1(b *testing.B) { benchMCDBMonteCarlo(b, 1) }
func BenchmarkMCDBMonteCarloWorkersN(b *testing.B) { benchMCDBMonteCarlo(b, runtime.NumCPU()) }

func benchFilterStep(b *testing.B, workers int) {
	if workers > 1 && runtime.NumCPU() < 4 {
		b.Skipf("NumCPU = %d < 4: no parallel speedup to measure", runtime.NumCPU())
	}
	f, obs, err := scalarFilter(4096, workers)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.StepCtx(context.Background(), obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterStepWorkers1(b *testing.B) { benchFilterStep(b, 1) }
func BenchmarkFilterStepWorkersN(b *testing.B) { benchFilterStep(b, runtime.NumCPU()) }
